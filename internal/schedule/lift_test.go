package schedule

import (
	"strings"
	"testing"
)

// figure2TraceOps is the checkpoint shape a Figure 2 replay captures:
// insert(2) spans the whole trace with its reads closed at the pause
// fire (pos 2) and writes opened at the release (pos 5); the failed
// insert(1) runs to completion strictly inside that bracket.
func figure2TraceOps() []TraceOp {
	return []TraceOp{
		{Spec: OpSpec{Kind: OpInsert, Arg: 2}, Result: true, Begin: 1, End: 6, ReadsBefore: 2, WritesAfter: 5},
		{Spec: OpSpec{Kind: OpInsert, Arg: 1}, Result: false, Begin: 3, End: 4},
	}
}

// TestLiftFigure2 lifts the Figure 2 checkpoint shape: the result must
// be a VBL-accepted schedule that Lazy rejects — the phase constraints
// force the failed insert into the middle of the parked update, which
// is exactly the separation the figure demonstrates.
func TestLiftFigure2(t *testing.T) {
	s, err := Lift(AlgVBL, []int64{1}, figure2TraceOps())
	if err != nil {
		t.Fatal(err)
	}
	if !Accepts(AlgVBL, s) {
		t.Fatalf("lifted schedule not VBL-accepted: %v", s)
	}
	if Accepts(AlgLazy, s) {
		t.Fatalf("lifted Figure 2 schedule must be Lazy-rejected: %v", s)
	}
}

// TestLiftMatchesResults rejects a trace whose observed results no
// machine interleaving can reproduce.
func TestLiftMatchesResults(t *testing.T) {
	ops := figure2TraceOps()
	ops[1].Result = true // insert(1) cannot succeed with 1 present throughout
	_, err := Lift(AlgVBL, []int64{1}, ops)
	if err == nil {
		t.Fatal("Lift accepted a result no interleaving can produce")
	}
	if !strings.Contains(err.Error(), "no") {
		t.Fatalf("err = %v, want a no-consistent-schedule report", err)
	}
}

// TestLiftSequentialSpans lifts non-overlapping spans: the only
// consistent interleavings are the serial ones.
func TestLiftSequentialSpans(t *testing.T) {
	ops := []TraceOp{
		{Spec: OpSpec{Kind: OpInsert, Arg: 5}, Result: true, Begin: 1, End: 2},
		{Spec: OpSpec{Kind: OpRemove, Arg: 5}, Result: true, Begin: 3, End: 4},
		{Spec: OpSpec{Kind: OpContains, Arg: 5}, Result: false, Begin: 5, End: 6},
	}
	s, err := Lift(AlgVBL, nil, ops)
	if err != nil {
		t.Fatal(err)
	}
	// Serial spans: every step of op 0 precedes every step of op 1, etc.
	last := -1
	for _, e := range s.Events {
		if e.Op < last {
			t.Fatalf("serial spans lifted to an interleaved event order %v", s.Events)
		}
		last = e.Op
	}
}

func TestLiftValidation(t *testing.T) {
	bad := []struct {
		name string
		ops  []TraceOp
	}{
		{"empty", nil},
		{"end before begin", []TraceOp{{Spec: OpSpec{Kind: OpInsert, Arg: 1}, Begin: 5, End: 5}}},
		{"reads-before outside span", []TraceOp{{Spec: OpSpec{Kind: OpInsert, Arg: 1}, Begin: 2, End: 4, ReadsBefore: 1}}},
		{"writes-after outside span", []TraceOp{{Spec: OpSpec{Kind: OpInsert, Arg: 1}, Begin: 2, End: 4, WritesAfter: 4}}},
	}
	for _, c := range bad {
		if _, err := Lift(AlgVBL, nil, c.ops); err == nil {
			t.Errorf("%s: Lift accepted invalid input", c.name)
		}
	}
}

// TestLiftAdjustedModel lifts under Harris, whose reference model is
// the adjusted one; the lifted schedule must carry that model so
// Accepts agrees with it.
func TestLiftAdjustedModel(t *testing.T) {
	ops := []TraceOp{
		{Spec: OpSpec{Kind: OpInsert, Arg: 7}, Result: true, Begin: 1, End: 2},
	}
	s, err := Lift(AlgHarris, nil, ops)
	if err != nil {
		t.Fatal(err)
	}
	if !s.Adjusted {
		t.Fatal("Harris lift must build adjusted-model schedules")
	}
	if !Accepts(AlgHarris, s) {
		t.Fatalf("lifted schedule not Harris-accepted: %v", s)
	}
}
