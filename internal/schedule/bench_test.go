package schedule

import "testing"

// BenchmarkGeneratePair measures schedule-space enumeration for one
// operation pair.
func BenchmarkGeneratePair(b *testing.B) {
	ops := []OpSpec{{Kind: OpInsert, Arg: 2}, {Kind: OpRemove, Arg: 1}}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if got := GenerateAll([]int64{1}, ops, false, 0); len(got) == 0 {
			b.Fatal("no schedules generated")
		}
	}
}

// BenchmarkOracle measures the Definition-1 verdict on Figure 2.
func BenchmarkOracle(b *testing.B) {
	s := Figure2()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if ok, _ := Correct(s); !ok {
			b.Fatal("Figure 2 should be correct")
		}
	}
}

// BenchmarkAcceptVBL measures the acceptance search on Figure 2 (an
// accepting run).
func BenchmarkAcceptVBL(b *testing.B) {
	s := Figure2()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !Accepts(AlgVBL, s) {
			b.Fatal("VBL should accept Figure 2")
		}
	}
}

// BenchmarkRejectLazy measures the acceptance search on Figure 2 for
// Lazy (an exhaustive rejecting run — the expensive direction).
func BenchmarkRejectLazy(b *testing.B) {
	s := Figure2()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if Accepts(AlgLazy, s) {
			b.Fatal("Lazy should reject Figure 2")
		}
	}
}

// BenchmarkRejectHarris measures the rejecting search on Figure 3.
func BenchmarkRejectHarris(b *testing.B) {
	s := Figure3()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if Accepts(AlgHarris, s) {
			b.Fatal("Harris should reject Figure 3")
		}
	}
}
