package schedule

import (
	"fmt"
	"strings"
)

// Deadlock-freedom checking (the progress half of the paper's
// correctness discussion in §3.2): explore EVERY interleaving of an
// algorithm's machines — not driven by any schedule — and verify that
// no reachable state is a total deadlock (some unfinished operation can
// always step) and that every execution path terminates.
//
// Machines run in "free run" mode: no events are exported and attempts
// behave exactly as the real algorithm's do (failed validations retry,
// successful ones complete), so the explored state graph is the true
// one. Termination of every path is checked by rejecting cycles on the
// DFS stack: a cycle would be an execution in which the adversarial
// scheduler keeps the system busy forever without any operation
// completing — a livelock. (Lock-free algorithms like Harris-Michael
// genuinely contain such adversarial loops — two operations can
// alternately fail each other's CAS — so the livelock check applies
// only to the lock-based algorithms, where the paper claims
// deadlock-freedom.)

// freeRunner is implemented by machines that support free-run mode.
type freeRunner interface {
	machine
	setFreeRun()
}

func (m *algBase) setFreeRun() {
	m.freeRun = true
	m.final = false
	m.finalChosen = true
}

// ProgressReport is the outcome of CheckProgress.
type ProgressReport struct {
	Algorithm Algorithm
	// States is the number of distinct states explored.
	States int
	// Deadlock is a description of a reachable total deadlock, if any.
	Deadlock string
	// Livelock is a description of a reachable scheduler loop in which
	// no operation completes, if any (only detected when checkLivelock).
	Livelock string
}

// OK reports whether no deadlock (and, if checked, no livelock) was
// found.
func (r ProgressReport) OK() bool { return r.Deadlock == "" && r.Livelock == "" }

// CheckProgress explores all interleavings of the given operations
// under alg from the initial list and checks for total deadlocks, and —
// when checkLivelock is set — for non-terminating scheduler loops.
func CheckProgress(alg Algorithm, initial []int64, ops []OpSpec, checkLivelock bool) ProgressReport {
	rep := ProgressReport{Algorithm: alg}
	h := NewHeap(initial)
	ms := make([]machine, len(ops))
	for i, spec := range ops {
		m := newAlgMachine(alg, i, spec, alg.Adjusted())
		if fr, ok := m.(freeRunner); ok {
			fr.setFreeRun()
		}
		ms[i] = m
	}
	visited := make(map[string]struct{})
	onStack := make(map[string]struct{})

	var dfs func(h *Heap, ms []machine) bool // false => stop (flaw found)
	dfs = func(h *Heap, ms []machine) bool {
		sig := stateSignature(h, ms, 0)
		if _, dup := visited[sig]; dup {
			if checkLivelock {
				if _, cyc := onStack[sig]; cyc {
					rep.Livelock = describeState(ms)
					return false
				}
			}
			return true
		}
		visited[sig] = struct{}{}
		if checkLivelock {
			onStack[sig] = struct{}{}
			defer delete(onStack, sig)
		}
		rep.States++

		anyUnfinished := false
		anyEnabled := false
		for i, m := range ms {
			if m.done() {
				continue
			}
			anyUnfinished = true
			if am, ok := m.(attemptMachine); ok && am.poisoned() {
				panic("schedule: poisoned machine in free run")
			}
			if !m.enabled(h) {
				continue
			}
			anyEnabled = true
			h2, ms2 := cloneState(h, ms)
			ms2[i].step(h2)
			if !dfs(h2, ms2) {
				return false
			}
		}
		if anyUnfinished && !anyEnabled {
			rep.Deadlock = describeState(ms)
			return false
		}
		return true
	}
	dfs(h, ms)
	return rep
}

func describeState(ms []machine) string {
	var b strings.Builder
	for i, m := range ms {
		if i > 0 {
			b.WriteString("; ")
		}
		fmt.Fprintf(&b, "op%d:%s", i, machineSignature(m))
	}
	return b.String()
}
