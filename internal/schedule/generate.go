package schedule

import "fmt"

// Run executes the sequential machines under a fixed scheduler order and
// returns the exported schedule. order lists, step by step, which
// operation advances (internal steps count as steps). It errors if an
// entry names a completed operation or if the order does not run every
// operation to completion — schedules are complete by definition here.
func Run(initial []int64, ops []OpSpec, adjusted bool, order []int) (Schedule, error) {
	h := NewHeap(initial)
	ms := make([]machine, len(ops))
	for i, spec := range ops {
		ms[i] = newSeqMachine(i, spec, adjusted)
	}
	s := Schedule{Initial: append([]int64(nil), initial...), Ops: append([]OpSpec(nil), ops...), Adjusted: adjusted}
	for step, i := range order {
		if i < 0 || i >= len(ms) {
			return Schedule{}, fmt.Errorf("schedule: order step %d names op %d, have %d ops", step, i, len(ms))
		}
		if ms[i].done() {
			return Schedule{}, fmt.Errorf("schedule: order step %d advances completed op %d", step, i)
		}
		if ev := ms[i].step(h); ev != nil {
			s.Events = append(s.Events, *ev)
		}
	}
	for i, m := range ms {
		if !m.done() {
			return Schedule{}, fmt.Errorf("schedule: op %d (%s) incomplete after the order", i, ops[i])
		}
	}
	return s, nil
}

// RunToCompletion finishes any remaining steps of order round-robin; it
// is a convenience for building schedules where only a prefix order
// matters.
func RunToCompletion(initial []int64, ops []OpSpec, adjusted bool, prefix []int) (Schedule, error) {
	// Execute the prefix, then let each op run to completion in index
	// order; compute the full order first, then delegate to Run so the
	// error handling is shared.
	counts := make([]int, len(ops))
	full := append([]int(nil), prefix...)
	// Dry-run to find remaining step counts.
	h := NewHeap(initial)
	ms := make([]machine, len(ops))
	for i, spec := range ops {
		ms[i] = newSeqMachine(i, spec, adjusted)
	}
	for step, i := range prefix {
		if i < 0 || i >= len(ms) {
			return Schedule{}, fmt.Errorf("schedule: prefix step %d names op %d, have %d ops", step, i, len(ops))
		}
		if ms[i].done() {
			return Schedule{}, fmt.Errorf("schedule: prefix step %d advances completed op %d", step, i)
		}
		ms[i].step(h)
		counts[i]++
	}
	for i := range ms {
		for !ms[i].done() {
			ms[i].step(h)
			full = append(full, i)
		}
	}
	return Run(initial, ops, adjusted, full)
}

// GenerateAll enumerates every schedule in § obtainable by interleaving
// the sequential machines of ops over the initial list — the schedule
// space the paper quantifies over. Schedules are deduplicated by their
// canonical key. limit caps the number of *distinct* schedules gathered
// (0 means no cap); the search stops once reached.
func GenerateAll(initial []int64, ops []OpSpec, adjusted bool, limit int) []Schedule {
	h := NewHeap(initial)
	ms := make([]machine, len(ops))
	for i, spec := range ops {
		ms[i] = newSeqMachine(i, spec, adjusted)
	}
	seen := make(map[string]struct{})
	var out []Schedule
	var rec func(h *Heap, ms []machine, events []Event)
	rec = func(h *Heap, ms []machine, events []Event) {
		if limit > 0 && len(out) >= limit {
			return
		}
		allDone := true
		for _, m := range ms {
			if !m.done() {
				allDone = false
				break
			}
		}
		if allDone {
			s := Schedule{
				Initial:  append([]int64(nil), initial...),
				Ops:      append([]OpSpec(nil), ops...),
				Adjusted: adjusted,
				Events:   append([]Event(nil), events...),
			}
			key := s.Key()
			if _, dup := seen[key]; !dup {
				seen[key] = struct{}{}
				out = append(out, s)
			}
			return
		}
		for i, m := range ms {
			if m.done() {
				continue
			}
			h2, ms2 := cloneState(h, ms)
			ev := ms2[i].step(h2)
			if ev != nil {
				rec(h2, ms2, append(events, *ev))
			} else {
				rec(h2, ms2, events)
			}
		}
	}
	rec(h, ms, nil)
	return out
}
