package schedule

import "testing"

// The concurrency hierarchy: accepted-schedule counts must be strictly
// ordered coarse < hand-over-hand < lazy < vbl, with vbl accepting
// everything correct — the paper's framework applied across the whole
// family of list algorithms.

func TestCoarseAndHOHAcceptSoloSchedules(t *testing.T) {
	specs := []OpSpec{
		{Kind: OpInsert, Arg: 2},
		{Kind: OpRemove, Arg: 1},
		{Kind: OpRemove, Arg: 2},
		{Kind: OpContains, Arg: 1},
	}
	for _, spec := range specs {
		s := runSolo(t, []int64{1, 3}, spec, false)
		for _, alg := range []Algorithm{AlgCoarse, AlgHOH, AlgOptimistic} {
			if !Accepts(alg, s) {
				t.Errorf("%v does not accept solo %s:\n%s", alg, spec, s)
			}
		}
	}
}

func TestOptimisticRejectsReadDuringLockWindow(t *testing.T) {
	// Figure 2 requires insert(1) to return false inside insert(2)'s
	// write window: the optimistic list rejects it for the same reason
	// Lazy does (insert(1)'s completion needs the locks).
	s := Figure2()
	if Accepts(AlgOptimistic, s) {
		t.Fatal("optimistic list must reject Figure 2")
	}
	// It also rejects the Lazy-accepted marked-read style schedule where
	// a contains completes between a remove's read of the victim's
	// successor and its unlink write, because contains needs the very
	// locks the remove holds across that span.
	ops := []OpSpec{{Kind: OpRemove, Arg: 1}, {Kind: OpContains, Arg: 1}}
	contained, err := Run([]int64{1}, ops, false, []int{
		0, 0, 0, // remove(1): Rnext(h), Rval(N2), Rnext(N2)
		1, 1, 1, // contains(1) completes with true
		0, 0, // remove: Wnext(h=tail), ret(true)
	})
	if err != nil {
		t.Fatal(err)
	}
	if ok, _ := Correct(contained); !ok {
		t.Fatal("the contains-inside-remove schedule should be correct")
	}
	if !Accepts(AlgLazy, contained) {
		t.Fatal("Lazy should accept the contains-inside-remove schedule (its contains is wait-free)")
	}
	if Accepts(AlgOptimistic, contained) {
		t.Fatal("optimistic must reject it: its contains takes the locks the remove holds")
	}
	if !Accepts(AlgVBL, contained) {
		t.Fatal("VBL should accept the contains-inside-remove schedule")
	}
}

func TestCoarseAcceptsOnlyBlockSequential(t *testing.T) {
	// Sequential composition: accepted.
	ops := []OpSpec{{Kind: OpInsert, Arg: 1}, {Kind: OpContains, Arg: 1}}
	seqComp, err := RunToCompletion(nil, ops, false, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !Accepts(AlgCoarse, seqComp) {
		t.Fatalf("coarse must accept a sequential composition:\n%s", seqComp)
	}
	// Any interleaving at all: rejected. Two contains(2) on {1,2},
	// pipelined: op1 enters the list while op0 is one window ahead.
	ops = []OpSpec{{Kind: OpContains, Arg: 2}, {Kind: OpContains, Arg: 2}}
	pipelined, err := Run([]int64{1, 2}, ops, false, []int{
		0, 0, // op0: Rnext(h), Rval(1) — window advances off head
		1,       // op1: Rnext(h) — enters behind op0
		0, 0, 0, // op0: Rnext(1), Rval(2), ret(true)
		1, 1, 1, 1, // op1 finishes
	})
	if err != nil {
		t.Fatal(err)
	}
	if ok, _ := Correct(pipelined); !ok {
		t.Fatal("pipelined reads should be correct")
	}
	if Accepts(AlgCoarse, pipelined) {
		t.Fatalf("coarse must reject interleaved operations:\n%s", pipelined)
	}
	// Hand-over-hand pipelines them: op0 ahead of op1 down the list.
	if !Accepts(AlgHOH, pipelined) {
		t.Fatalf("hand-over-hand should accept a pipelined read pair:\n%s", pipelined)
	}
}

func TestHOHRejectsOvertaking(t *testing.T) {
	// Two contains on {1,2}: op1 starts after op0 but finishes its first
	// read before op0 — overtaking inside the list, which a sliding lock
	// window forbids but wait-free traversals allow.
	ops := []OpSpec{{Kind: OpContains, Arg: 2}, {Kind: OpContains, Arg: 2}}
	overtake, err := Run([]int64{1, 2}, ops, false, []int{
		0,          // op0: Rnext(h)
		1, 1, 1, 1, // op1: full traversal: Rnext(h), Rval(1), Rnext, Rval(2)
		1,          // op1: ret
		0, 0, 0, 0, // op0 finishes
	})
	if err != nil {
		t.Fatal(err)
	}
	if ok, _ := Correct(overtake); !ok {
		t.Fatal("overtaking reads should be correct")
	}
	if Accepts(AlgHOH, overtake) {
		t.Fatalf("hand-over-hand must reject overtaking:\n%s", overtake)
	}
	if !Accepts(AlgLazy, overtake) || !Accepts(AlgVBL, overtake) {
		t.Fatal("wait-free traversals must accept overtaking reads")
	}
}

// TestConcurrencyHierarchy quantifies the accepted-schedule counts over
// the quick scope: coarse < hoh < lazy < vbl = correct.
func TestConcurrencyHierarchy(t *testing.T) {
	if testing.Short() || raceEnabled {
		t.Skip("enumeration skipped in -short and -race modes")
	}
	sc := QuickScope()
	reports := map[Algorithm]OptimalityReport{}
	for _, alg := range []Algorithm{AlgCoarse, AlgHOH, AlgOptimistic, AlgLazy, AlgVBL} {
		reports[alg] = CheckOptimality(alg, sc)
		t.Logf("%s", reports[alg])
	}
	if !(reports[AlgCoarse].Accepted < reports[AlgHOH].Accepted) {
		t.Errorf("hierarchy violated: coarse %d !< hoh %d", reports[AlgCoarse].Accepted, reports[AlgHOH].Accepted)
	}
	if !(reports[AlgHOH].Accepted < reports[AlgOptimistic].Accepted) {
		t.Errorf("hierarchy violated: hoh %d !< optimistic %d", reports[AlgHOH].Accepted, reports[AlgOptimistic].Accepted)
	}
	if !(reports[AlgOptimistic].Accepted < reports[AlgLazy].Accepted) {
		t.Errorf("hierarchy violated: optimistic %d !< lazy %d", reports[AlgOptimistic].Accepted, reports[AlgLazy].Accepted)
	}
	if !(reports[AlgLazy].Accepted < reports[AlgVBL].Accepted) {
		t.Errorf("hierarchy violated: lazy %d !< vbl %d", reports[AlgLazy].Accepted, reports[AlgVBL].Accepted)
	}
	if !reports[AlgVBL].Optimal() {
		t.Error("vbl must top the hierarchy by accepting every correct schedule")
	}
}
