package schedule

import "testing"

func TestGenerateAllSoloCounts(t *testing.T) {
	// A single operation has exactly one schedule regardless of
	// "interleaving".
	for _, spec := range []OpSpec{
		{Kind: OpInsert, Arg: 2},
		{Kind: OpRemove, Arg: 1},
		{Kind: OpContains, Arg: 1},
	} {
		got := GenerateAll([]int64{1}, []OpSpec{spec}, false, 0)
		if len(got) != 1 {
			t.Fatalf("%s solo produced %d schedules, want 1", spec, len(got))
		}
	}
}

func TestGenerateAllPairIsDeduplicated(t *testing.T) {
	ops := []OpSpec{{Kind: OpContains, Arg: 1}, {Kind: OpContains, Arg: 1}}
	got := GenerateAll([]int64{1}, ops, false, 0)
	seen := map[string]struct{}{}
	for _, s := range got {
		key := s.Key()
		if _, dup := seen[key]; dup {
			t.Fatalf("duplicate schedule emitted:\n%s", s)
		}
		seen[key] = struct{}{}
	}
	// Two contains ops, 3 steps each (Rnext, Rval, ret) with no writes:
	// every interleaving is distinguishable only by event order, so the
	// count is C(6,3) = 20.
	if len(got) != 20 {
		t.Fatalf("generated %d schedules, want 20", len(got))
	}
}

func TestGenerateAllLimit(t *testing.T) {
	ops := []OpSpec{{Kind: OpInsert, Arg: 1}, {Kind: OpInsert, Arg: 2}}
	got := GenerateAll(nil, ops, false, 5)
	if len(got) != 5 {
		t.Fatalf("limit ignored: got %d schedules", len(got))
	}
}

func TestGeneratedSchedulesAreInternallyConsistent(t *testing.T) {
	ops := []OpSpec{{Kind: OpInsert, Arg: 2}, {Kind: OpRemove, Arg: 1}}
	for _, s := range GenerateAll([]int64{1, 3}, ops, false, 200) {
		// Every generated schedule replays without panicking and has
		// exactly one return per op.
		if _, ok := s.Results(); !ok {
			t.Fatalf("malformed results:\n%s", s)
		}
		_ = FinalMembers(s)
		// Read events must carry the values replay would produce; spot
		// check: first event of each op reads from a real node.
		for _, e := range s.Events {
			if e.Kind == EvReadNext && e.Target == None {
				t.Fatalf("read of dangling target:\n%s", s)
			}
		}
	}
}

func TestAlgorithmStrings(t *testing.T) {
	for alg, want := range map[Algorithm]string{
		AlgSeq:    "sequential",
		AlgVBL:    "vbl",
		AlgLazy:   "lazy",
		AlgHarris: "harris-michael",
	} {
		if alg.String() != want {
			t.Fatalf("Algorithm(%d).String() = %q, want %q", alg, alg.String(), want)
		}
	}
	if !AlgHarris.Adjusted() || AlgVBL.Adjusted() || AlgLazy.Adjusted() || AlgSeq.Adjusted() {
		t.Fatal("Adjusted() wrong")
	}
}

func TestEventAndOpStrings(t *testing.T) {
	kinds := []EventKind{EvReadNext, EvReadVal, EvNewNode, EvWriteNext, EvMark, EvReturn}
	for _, k := range kinds {
		if k.String() == "" {
			t.Fatal("empty EventKind string")
		}
		e := Event{Op: 1, Kind: k, Node: 2, Val: 3, Target: 4}
		if e.String() == "" {
			t.Fatal("empty Event string")
		}
	}
	if (OpSpec{Kind: OpInsert, Arg: 7}).String() != "insert(7)" {
		t.Fatal("OpSpec string wrong")
	}
	if OpInsert.String() != "insert" || OpRemove.String() != "remove" || OpContains.String() != "contains" {
		t.Fatal("OpKind strings wrong")
	}
	if valStr(MinVal) != "-inf" || valStr(MaxVal) != "+inf" || valStr(5) != "5" {
		t.Fatal("valStr wrong")
	}
}

func TestScheduleKeyDistinguishes(t *testing.T) {
	a := Figure2()
	b := FailedRemoveSchedule()
	if a.Key() == b.Key() {
		t.Fatal("distinct schedules share a key")
	}
	if a.Key() != Figure2().Key() {
		t.Fatal("deterministic construction produced differing keys")
	}
}
