//go:build race

package schedule

// raceEnabled reports whether the race detector is active. The
// exhaustive enumeration tests are deterministic single-goroutine
// searches — the race detector can find nothing in them while slowing
// them several-fold — so they skip themselves under -race.
const raceEnabled = true
