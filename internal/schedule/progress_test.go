package schedule

import "testing"

// The executable deadlock-freedom claim (§3.2): explore every
// interleaving of small operation mixes and verify no total deadlock is
// reachable; for the lock-based algorithms additionally verify that no
// adversarial scheduler loop avoids completion forever (livelock).

// progressMixes are contention-heavy operation mixes over tiny lists.
func progressMixes() []struct {
	initial []int64
	ops     []OpSpec
} {
	return []struct {
		initial []int64
		ops     []OpSpec
	}{
		{[]int64{1}, []OpSpec{{Kind: OpInsert, Arg: 2}, {Kind: OpInsert, Arg: 2}}},
		{[]int64{1}, []OpSpec{{Kind: OpRemove, Arg: 1}, {Kind: OpRemove, Arg: 1}}},
		{[]int64{1, 2}, []OpSpec{{Kind: OpRemove, Arg: 1}, {Kind: OpRemove, Arg: 2}}},
		{[]int64{1, 2}, []OpSpec{{Kind: OpInsert, Arg: 3}, {Kind: OpRemove, Arg: 2}}},
		{[]int64{2}, []OpSpec{{Kind: OpInsert, Arg: 1}, {Kind: OpRemove, Arg: 2}, {Kind: OpContains, Arg: 2}}},
		{nil, []OpSpec{{Kind: OpInsert, Arg: 1}, {Kind: OpInsert, Arg: 1}, {Kind: OpRemove, Arg: 1}}},
	}
}

func TestDeadlockFreedomAllAlgorithms(t *testing.T) {
	algs := []Algorithm{AlgVBL, AlgLazy, AlgHarris, AlgCoarse, AlgHOH, AlgOptimistic}
	for _, alg := range algs {
		for i, mix := range progressMixes() {
			rep := CheckProgress(alg, mix.initial, mix.ops, false)
			if rep.Deadlock != "" {
				t.Errorf("%v mix %d: reachable deadlock: %s", alg, i, rep.Deadlock)
			}
			if rep.States == 0 {
				t.Errorf("%v mix %d: no states explored", alg, i)
			}
		}
	}
}

// TestLivelockFreedomLockBased: the paper's deadlock-freedom for VBL
// (and the classic results for Lazy, coarse, hand-over-hand and
// optimistic) are actually freedom from any non-progressing scheduler
// loop: with blocking locks, a failed validation implies another
// operation completed a conflicting step, so the system cannot cycle.
func TestLivelockFreedomLockBased(t *testing.T) {
	algs := []Algorithm{AlgVBL, AlgLazy, AlgCoarse, AlgHOH}
	for _, alg := range algs {
		for i, mix := range progressMixes() {
			rep := CheckProgress(alg, mix.initial, mix.ops, true)
			if !rep.OK() {
				t.Errorf("%v mix %d: deadlock=%q livelock=%q", alg, i, rep.Deadlock, rep.Livelock)
			}
		}
	}
}

// TestHarrisLockFreeNotLivelockFree documents the known distinction:
// Harris-Michael is lock-free (SOME operation always completes) but an
// adversarial scheduler CAN starve an individual operation by making
// its CAS fail forever only with ever-new interference — in a closed
// finite system of completing operations that interference runs out,
// so no livelock cycle exists among update-only mixes either; what CAN
// cycle is helping against helping. We simply record the checker's
// verdict for the standard mixes to pin the behaviour.
func TestHarrisProgressRecorded(t *testing.T) {
	for i, mix := range progressMixes() {
		rep := CheckProgress(AlgHarris, mix.initial, mix.ops, true)
		if rep.Deadlock != "" {
			t.Errorf("harris mix %d: deadlock (impossible for lock-free): %s", i, rep.Deadlock)
		}
		// Livelocks among a finite closed set of operations would
		// require two operations to keep failing each other's CAS with
		// no net state change; the mark/unlink monotonicity prevents
		// that, so we expect none.
		if rep.Livelock != "" {
			t.Errorf("harris mix %d: unexpected livelock: %s", i, rep.Livelock)
		}
	}
}

func TestOptimisticProgress(t *testing.T) {
	for i, mix := range progressMixes() {
		rep := CheckProgress(AlgOptimistic, mix.initial, mix.ops, true)
		if !rep.OK() {
			t.Errorf("optimistic mix %d: deadlock=%q livelock=%q", i, rep.Deadlock, rep.Livelock)
		}
	}
}

// TestProgressDetectsSeededDeadlock sanity-checks the checker itself
// with a machine pair that deadlocks by construction: two hand-over-
// hand traversals cannot deadlock, so instead we seed a heap state with
// a lock held by a nonexistent operation and verify the checker reports
// the stuck state.
func TestProgressDetectsSeededDeadlock(t *testing.T) {
	h := NewHeap([]int64{1})
	if !h.TryLock(Head, 99) { // a phantom operation holds head forever
		t.Fatal("seed lock failed")
	}
	m := newAlgMachine(AlgHOH, 0, OpSpec{Kind: OpContains, Arg: 1}, false)
	if fr, ok := m.(freeRunner); ok {
		fr.setFreeRun()
	}
	// The machine needs head's lock for its first step: never enabled.
	if m.enabled(h) {
		t.Fatal("machine enabled despite the phantom lock")
	}
}
