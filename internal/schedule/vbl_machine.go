package schedule

// vblMachine is the abstract VBL operation (Algorithm 2 of the paper)
// over the schedule heap: wait-free traversal, value-aware try-lock with
// validation under the lock, logical deletion (internal metadata in the
// standard model) before physical unlinking.
type vblMachine struct {
	algBase
}

func (m *vblMachine) clone() machine {
	c := *m
	return &c
}

// enabled gates the lock-acquisition steps: a machine waiting on a lock
// held by another operation cannot step.
func (m *vblMachine) enabled(h *Heap) bool {
	switch m.pc {
	case aInsLockPrev, aRemLockPrev:
		return h.LockedBy(m.prev) < 0
	case aRemLockCurr:
		return h.LockedBy(m.curr) < 0
	case aDone, aPoisoned:
		return false
	default:
		return true
	}
}

func (m *vblMachine) step(h *Heap) *Event {
	v := m.spec.Arg
	switch m.pc {
	case aStart:
		m.beginTraversal()
		return nil

	case aReadNext:
		return m.traversalReadNext(h, aReadVal)

	case aReadVal:
		m.tval = h.Val(m.curr)
		ev := m.export(Event{Op: m.op, Kind: EvReadVal, Node: m.curr, Val: m.tval})
		if m.tval < v {
			m.prev = m.curr
			m.pc = aReadNext
			return ev
		}
		switch m.spec.Kind {
		case OpContains:
			// VBL contains ignores deletion marks entirely.
			m.retval = m.tval == v
			m.pc = aReturn
		case OpInsert:
			if m.tval == v {
				m.complete(false) // no metadata touched — Figure 2's point
			} else {
				m.pc = aInsNew
			}
		case OpRemove:
			if m.tval != v {
				m.complete(false)
			} else {
				m.pc = aRemReadNext
			}
		}
		return ev

	// --- insert path (Algorithm 2, lines 26-32) ---
	case aInsNew:
		if m.freeRun {
			// Reuse one node across attempts: a fresh allocation per
			// retry would make every state distinct and the progress
			// exploration unbounded. Abandoned nodes are unobservable,
			// so reuse is behaviour-preserving.
			if m.created == None {
				m.created = h.NewNode(v, m.curr)
			} else {
				h.SetNext(m.created, m.curr)
			}
			m.pc = aInsLockPrev
			return nil
		}
		if m.final {
			m.created = h.NewNode(v, m.curr)
			m.pc = aInsLockPrev
			return &Event{Op: m.op, Kind: EvNewNode, Node: m.created, Val: v, Target: m.curr}
		}
		// Non-final attempts do not allocate an exported node: theirs
		// would never be linked.
		m.created = None
		m.pc = aInsLockPrev
		return nil

	case aInsLockPrev: // lockNextAt: take the CAS lock...
		if !h.TryLock(m.prev, m.op) {
			panic("schedule: vbl lock step while not enabled")
		}
		m.pc = aInsValidate
		return nil

	case aInsValidate: // ...then validate under it.
		if h.Deleted(m.prev) || h.Next(m.prev) != m.curr {
			h.Unlock(m.prev, m.op)
			m.restart()
			return nil
		}
		if !m.freeRun && !m.final {
			// Validation succeeded: this attempt completes, so the
			// non-final guess was wrong.
			h.Unlock(m.prev, m.op)
			m.pc = aPoisoned
			return nil
		}
		m.pc = aInsWrite
		return nil

	case aInsWrite:
		h.SetNext(m.prev, m.created)
		ev := Event{Op: m.op, Kind: EvWriteNext, Node: m.prev, Target: m.created}
		h.Unlock(m.prev, m.op)
		m.retval = true
		m.pc = aReturn
		return &ev

	// --- remove path (Algorithm 2, lines 38-48) ---
	case aRemReadNext: // line 38: next <- curr.next
		m.tnext = h.Next(m.curr)
		m.pc = aRemLockPrev
		return m.export(Event{Op: m.op, Kind: EvReadNext, Node: m.curr, Target: m.tnext})

	case aRemLockPrev: // lockNextAtValue: take the lock...
		if !h.TryLock(m.prev, m.op) {
			panic("schedule: vbl lock step while not enabled")
		}
		m.pc = aRemValidatePrev
		return nil

	case aRemValidatePrev: // ...validate BY VALUE under it (line 39).
		if h.Deleted(m.prev) || h.Val(h.Next(m.prev)) != v {
			h.Unlock(m.prev, m.op)
			m.restart()
			return nil
		}
		m.pc = aRemReread
		return nil

	case aRemReread: // line 40: curr <- prev.next (fresh read under lock)
		m.curr = h.Next(m.prev)
		m.pc = aRemLockCurr
		return nil

	case aRemLockCurr:
		if !h.TryLock(m.curr, m.op) {
			panic("schedule: vbl lock step while not enabled")
		}
		m.pc = aRemValidateCurr
		return nil

	case aRemValidateCurr: // line 41: curr.next must still be tnext.
		if h.Deleted(m.curr) || h.Next(m.curr) != m.tnext {
			h.Unlock(m.curr, m.op)
			h.Unlock(m.prev, m.op)
			m.restart()
			return nil
		}
		if !m.freeRun && !m.final {
			h.Unlock(m.curr, m.op)
			h.Unlock(m.prev, m.op)
			m.pc = aPoisoned
			return nil
		}
		m.pc = aRemMark
		return nil

	case aRemMark: // line 44 — metadata, internal in the standard model
		h.SetDeleted(m.curr)
		m.pc = aRemUnlink
		return nil

	case aRemUnlink: // line 45
		h.SetNext(m.prev, m.tnext)
		ev := Event{Op: m.op, Kind: EvWriteNext, Node: m.prev, Target: m.tnext}
		h.Unlock(m.curr, m.op)
		h.Unlock(m.prev, m.op)
		m.retval = true
		m.pc = aReturn
		return &ev

	case aReturn:
		return m.emitReturn()

	default:
		panic("schedule: vbl machine stepped in invalid state")
	}
}
