package schedule

// optimisticMachine is the Optimistic locking list (Herlihy & Shavit
// ch. 9.6) in the acceptance framework, completing the optimistic-vs-
// pessimistic spectrum that motivated the concurrency-optimality
// programme: traversal is wait-free, but EVERY operation — contains
// included — locks its window and then validates it by re-traversing
// the list from head (internal reads, one per step). With no deletion
// marks, a failed validation restarts the whole operation.
//
// Its accepted-schedule set sits strictly between hand-over-hand and
// Lazy: traversals interleave freely, but no operation can complete
// inside another operation's lock window, and the double traversal
// (validation) must observe a reachable window.

// Additional program counters.
const (
	oValidateStart = 2000 + iota // begin the validation re-traversal
	oValidateStep                // one internal read of the re-traversal
	oDecide                      // validated: branch on the op kind
)

type optimisticMachine struct {
	algBase
	vpred NodeID // the validation re-traversal's cursor
}

// AlgOptimistic identifies the optimistic list (standard model).
const AlgOptimistic Algorithm = 200

func newOptimisticMachine(op int, spec OpSpec) *optimisticMachine {
	m := &optimisticMachine{algBase: newAlgBase(op, spec)}
	return m
}

func (m *optimisticMachine) clone() machine {
	c := *m
	return &c
}

func (m *optimisticMachine) enabled(h *Heap) bool {
	switch m.pc {
	case aLockPrev:
		return h.LockedBy(m.prev) < 0
	case aLockCurr:
		return h.LockedBy(m.curr) < 0
	case aDone, aPoisoned:
		return false
	default:
		return true
	}
}

func (m *optimisticMachine) unlockBoth(h *Heap) {
	h.Unlock(m.curr, m.op)
	h.Unlock(m.prev, m.op)
}

func (m *optimisticMachine) step(h *Heap) *Event {
	v := m.spec.Arg
	switch m.pc {
	case aStart:
		// Contains also restarts on failed validation, so unlike the
		// other machines it participates in finality speculation; the
		// speculative branching is handled by needsFinalityChoice.
		m.prev = Head
		m.pc = aReadNext
		return nil

	case aReadNext:
		return m.traversalReadNext(h, aReadVal)

	case aReadVal:
		m.tval = h.Val(m.curr)
		ev := m.exportAlways(Event{Op: m.op, Kind: EvReadVal, Node: m.curr, Val: m.tval})
		if m.tval < v {
			m.prev = m.curr
			m.pc = aReadNext
			return ev
		}
		m.pc = aLockPrev
		return ev

	case aLockPrev:
		if !h.TryLock(m.prev, m.op) {
			panic("schedule: optimistic lock step while not enabled")
		}
		m.pc = aLockCurr
		return nil

	case aLockCurr:
		if !h.TryLock(m.curr, m.op) {
			panic("schedule: optimistic lock step while not enabled")
		}
		m.pc = oValidateStart
		return nil

	case oValidateStart:
		m.vpred = Head
		m.pc = oValidateStep
		return nil

	case oValidateStep: // one internal read of the re-traversal
		if m.vpred == m.prev {
			// Reached prev: the window is valid iff still adjacent.
			if h.Next(m.prev) == m.curr {
				m.pc = oDecide
			} else {
				m.unlockBoth(h)
				m.restartOptimistic()
			}
			return nil
		}
		if h.Val(m.vpred) > h.Val(m.prev) {
			// Walked past prev's value: prev is no longer reachable.
			m.unlockBoth(h)
			m.restartOptimistic()
			return nil
		}
		m.vpred = h.Next(m.vpred)
		return nil

	case oDecide:
		switch m.spec.Kind {
		case OpContains:
			m.unlockBoth(h)
			m.completeOptimistic(m.tval == v)
		case OpInsert:
			if m.tval == v {
				m.unlockBoth(h)
				m.completeOptimistic(false)
			} else {
				m.pc = aInsNew
			}
		case OpRemove:
			if m.tval != v {
				m.unlockBoth(h)
				m.completeOptimistic(false)
			} else {
				m.pc = aRemReadNext
			}
		}
		return nil

	case aInsNew:
		if !m.freeRun && !m.final {
			m.unlockBoth(h)
			m.pc = aPoisoned
			return nil
		}
		if m.freeRun && m.created != None {
			// Reuse one node across attempts (see the VBL machine).
			h.SetNext(m.created, m.curr)
			m.pc = aInsWrite
			return nil
		}
		m.created = h.NewNode(v, m.curr)
		m.pc = aInsWrite
		return m.exportAlways(Event{Op: m.op, Kind: EvNewNode, Node: m.created, Val: v, Target: m.curr})

	case aInsWrite:
		h.SetNext(m.prev, m.created)
		ev := Event{Op: m.op, Kind: EvWriteNext, Node: m.prev, Target: m.created}
		m.unlockBoth(h)
		m.retval = true
		m.pc = aReturn
		return &ev

	case aRemReadNext:
		if !m.freeRun && !m.final {
			m.unlockBoth(h)
			m.pc = aPoisoned
			return nil
		}
		m.tnext = h.Next(m.curr)
		m.pc = aRemUnlink
		return &Event{Op: m.op, Kind: EvReadNext, Node: m.curr, Target: m.tnext}

	case aRemUnlink:
		h.SetNext(m.prev, m.tnext)
		ev := Event{Op: m.op, Kind: EvWriteNext, Node: m.prev, Target: m.tnext}
		m.unlockBoth(h)
		m.retval = true
		m.pc = aReturn
		return &ev

	case aReturn:
		return m.emitReturn()

	default:
		panic("schedule: optimistic machine stepped in invalid state")
	}
}

// The optimistic list's contains can restart, so it cannot reuse the
// algBase helpers that treat contains as always-final.

func (m *optimisticMachine) needsFinalityChoice() bool {
	return !m.freeRun && m.pc == aStart && !m.finalChosen
}

// exportAlways exports on final attempts for every op kind, including
// contains.
func (m *optimisticMachine) exportAlways(e Event) *Event {
	if m.freeRun || !m.final {
		return nil
	}
	return &e
}

// traversalReadNext shadows the algBase helper to use exportAlways.
func (m *optimisticMachine) traversalReadNext(h *Heap, next int) *Event {
	m.curr = h.Next(m.prev)
	m.pc = next
	return m.exportAlways(Event{Op: m.op, Kind: EvReadNext, Node: m.prev, Target: m.curr})
}

func (m *optimisticMachine) restartOptimistic() {
	if !m.freeRun && m.final {
		m.pc = aPoisoned
		return
	}
	m.pc = aStart
	m.finalChosen = false
	m.prev = Head
	m.curr = None
	if !m.freeRun {
		m.created = None // free runs keep their node for reuse
	}
}

func (m *optimisticMachine) completeOptimistic(result bool) {
	if !m.freeRun && !m.final {
		m.pc = aPoisoned
		return
	}
	m.retval = result
	m.pc = aReturn
}
