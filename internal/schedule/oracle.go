package schedule

import "fmt"

// Correct implements Definition 1: a schedule is correct iff
//
//  1. it is a schedule at all, i.e. an interleaving of the (standard or
//     adjusted) sequential code — checked by acceptance of the
//     sequential "algorithm";
//  2. it is locally serializable w.r.t. LL: each operation's steps are
//     steps the sequential code could take against SOME sorted list.
//     Given (1), which pins per-operation control flow, this reduces to
//     the values each operation observes being strictly ascending: a
//     sorted list showing exactly those nodes in that order then
//     witnesses a sequential schedule S with σ|π = S|π;
//  3. every extension σ̄(v) is linearizable: there is a permutation of
//     the operations respecting σ's real-time order under which set
//     semantics produce every recorded result AND the final abstract
//     set equals the membership reachable from head after replaying σ —
//     the reachable membership is what any post-hoc contains(v) would
//     answer from, so final-state agreement is exactly "σ̄(v) is
//     linearizable for all v".
//
// It returns a human-readable reason for the first failed condition.
func Correct(s Schedule) (bool, string) {
	results, ok := s.Results()
	if !ok {
		return false, "malformed schedule: each op needs exactly one return event"
	}
	if !Accepts(AlgSeq, s) {
		return false, "not an interleaving of the sequential code (σ ∉ §)"
	}
	if op, ok := locallySerializable(s); !ok {
		return false, fmt.Sprintf("op %d is not locally serializable (observed values not ascending)", op)
	}
	if !extensionLinearizable(s, results) {
		return false, "no linearization matches the results and the final reachable state"
	}
	return true, ""
}

// locallySerializable checks condition (2); it returns the offending op
// on failure.
func locallySerializable(s Schedule) (int, bool) {
	last := make(map[int]int64)
	seenAny := make(map[int]bool)
	for _, e := range s.Events {
		if e.Kind != EvReadVal {
			continue
		}
		if seenAny[e.Op] && e.Val <= last[e.Op] {
			return e.Op, false
		}
		last[e.Op] = e.Val
		seenAny[e.Op] = true
	}
	return 0, true
}

// Replay applies the schedule's effectful events to a fresh heap and
// returns it. Read events are ignored (their recorded results were
// already validated by §-membership).
func Replay(s Schedule) *Heap {
	h := NewHeap(s.Initial)
	for _, e := range s.Events {
		switch e.Kind {
		case EvNewNode:
			id := h.NewNode(e.Val, e.Target)
			if id != e.Node {
				panic(fmt.Sprintf("schedule: replay allocated X%d where schedule says X%d", id, e.Node))
			}
		case EvWriteNext:
			h.SetNext(e.Node, e.Target)
		case EvMark:
			h.SetDeleted(e.Node)
		}
	}
	return h
}

// FinalMembers returns the set contents after the schedule: the values
// reachable from head (excluding logically deleted nodes in the
// adjusted model).
func FinalMembers(s Schedule) map[int64]bool {
	return Replay(s).Members(s.Adjusted)
}

// extensionLinearizable checks condition (3) by searching permutations.
func extensionLinearizable(s Schedule, results []bool) bool {
	n := len(s.Ops)
	// Real-time precedence between ops: a precedes b iff a's return
	// event occurs before b's first event.
	firstEvent := make([]int, n)
	returnEvent := make([]int, n)
	for i := range firstEvent {
		firstEvent[i] = -1
	}
	for idx, e := range s.Events {
		if firstEvent[e.Op] < 0 {
			firstEvent[e.Op] = idx
		}
		if e.Kind == EvReturn {
			returnEvent[e.Op] = idx
		}
	}
	precedes := func(a, b int) bool { return returnEvent[a] < firstEvent[b] }

	want := FinalMembers(s)

	initial := map[int64]bool{}
	for _, v := range s.Initial {
		initial[v] = true
	}

	used := make([]bool, n)
	state := map[int64]bool{}
	for k, v := range initial {
		state[k] = v
	}

	var try func(done int) bool
	try = func(done int) bool {
		if done == n {
			if len(state) != len(want) {
				return false
			}
			for k := range want {
				if !state[k] {
					return false
				}
			}
			return true
		}
		for i := 0; i < n; i++ {
			if used[i] {
				continue
			}
			// i may go next only if every unused op that precedes it is
			// already placed — i.e. no unused j with j→i.
			ok := true
			for j := 0; j < n; j++ {
				if j != i && !used[j] && precedes(j, i) {
					ok = false
					break
				}
			}
			if !ok {
				continue
			}
			// Apply set semantics and check the recorded result.
			op := s.Ops[i]
			cur := state[op.Arg]
			var legal bool
			var after bool
			switch op.Kind {
			case OpInsert:
				legal = results[i] == !cur
				after = true
			case OpRemove:
				legal = results[i] == cur
				after = false
			case OpContains:
				legal = results[i] == cur
				after = cur
			}
			if !legal {
				continue
			}
			used[i] = true
			if after {
				state[op.Arg] = true
			} else {
				delete(state, op.Arg)
			}
			if try(done + 1) {
				return true
			}
			used[i] = false
			if cur {
				state[op.Arg] = true
			} else {
				delete(state, op.Arg)
			}
		}
		return false
	}
	return try(0)
}
