package schedule

// lazyMachine is the abstract Lazy Linked List operation: wait-free
// traversal, then — for updates, whether or not they will modify the
// list — lock prev AND curr, validate after locking (both unmarked,
// still adjacent), and only then look at the value. This post-locking
// validation and the locks-taken-by-read-only-updates are exactly what
// Figure 2 exploits.
type lazyMachine struct {
	algBase
}

func (m *lazyMachine) clone() machine {
	c := *m
	return &c
}

func (m *lazyMachine) enabled(h *Heap) bool {
	switch m.pc {
	case aLockPrev:
		return h.LockedBy(m.prev) < 0
	case aLockCurr:
		return h.LockedBy(m.curr) < 0
	case aDone, aPoisoned:
		return false
	default:
		return true
	}
}

func (m *lazyMachine) unlockBoth(h *Heap) {
	h.Unlock(m.curr, m.op)
	h.Unlock(m.prev, m.op)
}

func (m *lazyMachine) step(h *Heap) *Event {
	v := m.spec.Arg
	switch m.pc {
	case aStart:
		m.beginTraversal()
		return nil

	case aReadNext:
		return m.traversalReadNext(h, aReadVal)

	case aReadVal:
		m.tval = h.Val(m.curr)
		ev := m.export(Event{Op: m.op, Kind: EvReadVal, Node: m.curr, Val: m.tval})
		if m.tval < v {
			m.prev = m.curr
			m.pc = aReadNext
			return ev
		}
		if m.spec.Kind == OpContains {
			m.pc = aContainsCheck
		} else {
			// Updates lock the window before examining it further.
			m.pc = aLockPrev
		}
		return ev

	case aContainsCheck: // internal read of the landing node's mark
		m.retval = m.tval == v && !h.Deleted(m.curr)
		m.pc = aReturn
		return nil

	case aLockPrev:
		if !h.TryLock(m.prev, m.op) {
			panic("schedule: lazy lock step while not enabled")
		}
		m.pc = aLockCurr
		return nil

	case aLockCurr:
		if !h.TryLock(m.curr, m.op) {
			panic("schedule: lazy lock step while not enabled")
		}
		m.pc = aValidate
		return nil

	case aValidate: // post-locking validation
		if h.Deleted(m.prev) || h.Deleted(m.curr) || h.Next(m.prev) != m.curr {
			m.unlockBoth(h)
			m.restart()
			return nil
		}
		m.pc = aAfterValidate
		return nil

	case aAfterValidate: // presence decision, still under both locks
		switch m.spec.Kind {
		case OpInsert:
			if m.tval == v {
				m.unlockBoth(h)
				m.complete(false)
				return nil
			}
			m.pc = aInsNew
		case OpRemove:
			if m.tval != v {
				m.unlockBoth(h)
				m.complete(false)
				return nil
			}
			m.pc = aRemReadNext
		}
		return nil

	case aInsNew: // node created under the locks (Heller et al.)
		if !m.freeRun && !m.final {
			// This attempt validated successfully and will complete: the
			// non-final guess was wrong.
			m.unlockBoth(h)
			m.pc = aPoisoned
			return nil
		}
		if m.freeRun && m.created != None {
			// Reuse one node across attempts (see the VBL machine).
			h.SetNext(m.created, m.curr)
			m.pc = aInsWrite
			return nil
		}
		m.created = h.NewNode(v, m.curr)
		m.pc = aInsWrite
		return m.export(Event{Op: m.op, Kind: EvNewNode, Node: m.created, Val: v, Target: m.curr})

	case aInsWrite:
		h.SetNext(m.prev, m.created)
		ev := Event{Op: m.op, Kind: EvWriteNext, Node: m.prev, Target: m.created}
		m.unlockBoth(h)
		m.retval = true
		m.pc = aReturn
		return &ev

	case aRemReadNext:
		if !m.freeRun && !m.final {
			m.unlockBoth(h)
			m.pc = aPoisoned
			return nil
		}
		m.tnext = h.Next(m.curr)
		m.pc = aRemMark
		return &Event{Op: m.op, Kind: EvReadNext, Node: m.curr, Target: m.tnext}

	case aRemMark: // logical deletion — metadata, internal
		h.SetDeleted(m.curr)
		m.pc = aRemUnlink
		return nil

	case aRemUnlink:
		h.SetNext(m.prev, m.tnext)
		ev := Event{Op: m.op, Kind: EvWriteNext, Node: m.prev, Target: m.tnext}
		m.unlockBoth(h)
		m.retval = true
		m.pc = aReturn
		return &ev

	case aReturn:
		return m.emitReturn()

	default:
		panic("schedule: lazy machine stepped in invalid state")
	}
}
