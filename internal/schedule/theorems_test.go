package schedule

import "testing"

// Empirical counterparts of the paper's Theorems 1 and 2 (soundness:
// the algorithms accept ONLY correct schedules) complementing the
// optimality check of Theorem 3 in schedule_test.go.

// generatePairs enumerates the schedules of every pair of ops in a tiny
// scope, returning them split by oracle verdict.
func generatePairs(t *testing.T, adjusted bool) (correct, incorrect []Schedule) {
	t.Helper()
	initials := [][]int64{{}, {1}, {1, 2}}
	args := []int64{1, 2}
	kinds := []OpKind{OpInsert, OpRemove, OpContains}
	seen := map[string]struct{}{}
	for _, initial := range initials {
		for _, k0 := range kinds {
			for _, a0 := range args {
				for _, k1 := range kinds {
					for _, a1 := range args {
						ops := []OpSpec{{Kind: k0, Arg: a0}, {Kind: k1, Arg: a1}}
						for _, s := range GenerateAll(initial, ops, adjusted, 0) {
							if _, dup := seen[s.Key()]; dup {
								continue
							}
							seen[s.Key()] = struct{}{}
							if ok, _ := Correct(s); ok {
								correct = append(correct, s)
							} else {
								incorrect = append(incorrect, s)
							}
						}
					}
				}
			}
		}
	}
	if len(correct) == 0 || len(incorrect) == 0 {
		t.Fatalf("degenerate scope: %d correct, %d incorrect", len(correct), len(incorrect))
	}
	return correct, incorrect
}

// TestThreeOpOptimality extends the Theorem 3 evidence beyond pairs:
// every schedule of selected THREE-operation mixes (including the
// reincarnation shape — two updates racing a third operation on one
// value) must, when correct, be accepted by VBL.
func TestThreeOpOptimality(t *testing.T) {
	if testing.Short() || raceEnabled {
		t.Skip("enumeration skipped in -short and -race modes")
	}
	mixes := [][]OpSpec{
		// The reincarnation family: remove ∥ remove ∥ insert on one value.
		{{Kind: OpRemove, Arg: 1}, {Kind: OpRemove, Arg: 1}, {Kind: OpInsert, Arg: 1}},
		// Insert race with a reader.
		{{Kind: OpInsert, Arg: 2}, {Kind: OpInsert, Arg: 2}, {Kind: OpContains, Arg: 2}},
		// Mixed keys: a window shared by three updates.
		{{Kind: OpInsert, Arg: 2}, {Kind: OpRemove, Arg: 1}, {Kind: OpInsert, Arg: 1}},
	}
	// The full 3-op schedule spaces run to tens of thousands of
	// schedules with a much deeper acceptance search each, so this test
	// checks a deterministic sample per mix (GenerateAll's DFS order is
	// deterministic; the limit takes its prefix).
	const samplePerMix = 3000
	totalCorrect, totalSchedules := 0, 0
	for mi, ops := range mixes {
		for _, s := range GenerateAll([]int64{1}, ops, false, samplePerMix) {
			totalSchedules++
			ok, _ := Correct(s)
			if !ok {
				continue
			}
			totalCorrect++
			if !Accepts(AlgVBL, s) {
				t.Fatalf("mix %d: VBL rejected a correct 3-op schedule:\n%s", mi, s)
			}
		}
	}
	t.Logf("3-op sample: VBL accepted all %d correct schedules of %d sampled", totalCorrect, totalSchedules)
	if totalCorrect == 0 {
		t.Fatal("no correct schedules generated — scope degenerate")
	}
}

// TestSeqAcceptsEveryGeneratedSchedule: §-membership is checked by
// acceptance of the sequential machines, so by construction every
// generated schedule must be accepted — a completeness check of the
// acceptance search itself.
func TestSeqAcceptsEveryGeneratedSchedule(t *testing.T) {
	if testing.Short() || raceEnabled {
		t.Skip("enumeration skipped in -short and -race modes")
	}
	for _, adjusted := range []bool{false, true} {
		correct, incorrect := generatePairs(t, adjusted)
		for _, group := range [][]Schedule{correct, incorrect} {
			for _, s := range group {
				if !Accepts(AlgSeq, s) {
					t.Fatalf("sequential machines do not re-accept a schedule they generated (adjusted=%v):\n%s", adjusted, s)
				}
			}
		}
	}
}

// TestVBLAcceptsOnlyCorrectSchedules is the empirical Theorem 1+2: no
// incorrect schedule may be accepted by VBL.
func TestVBLAcceptsOnlyCorrectSchedules(t *testing.T) {
	if testing.Short() || raceEnabled {
		t.Skip("enumeration skipped in -short and -race modes")
	}
	_, incorrect := generatePairs(t, false)
	accepted := 0
	for _, s := range incorrect {
		if Accepts(AlgVBL, s) {
			accepted++
			if accepted <= 3 {
				t.Errorf("VBL accepts an incorrect schedule:\n%s", s)
			}
		}
	}
	if accepted > 0 {
		t.Fatalf("VBL accepted %d/%d incorrect schedules", accepted, len(incorrect))
	}
}

// TestLazyAndHarrisAcceptOnlyCorrectSchedules: the baselines are
// sub-optimal but still sound — they too must reject every incorrect
// schedule.
func TestLazyAndHarrisAcceptOnlyCorrectSchedules(t *testing.T) {
	if testing.Short() || raceEnabled {
		t.Skip("enumeration skipped in -short and -race modes")
	}
	_, incorrectStd := generatePairs(t, false)
	for _, s := range incorrectStd {
		if Accepts(AlgLazy, s) {
			t.Fatalf("Lazy accepts an incorrect schedule:\n%s", s)
		}
	}
	_, incorrectAdj := generatePairs(t, true)
	for _, s := range incorrectAdj {
		if Accepts(AlgHarris, s) {
			t.Fatalf("Harris accepts an incorrect schedule:\n%s", s)
		}
	}
}
