package schedule

import "fmt"

// Scope describes a small-scope exhaustive check: every pair of
// operations drawn from Kinds × Args, over every initial list in
// Initials, all interleavings.
type Scope struct {
	// Initials are the initial list contents to try.
	Initials [][]int64
	// Args are the operation arguments to try.
	Args []int64
	// Kinds are the operation kinds to try.
	Kinds []OpKind
	// Adjusted selects the sequential model.
	Adjusted bool
}

// DefaultScope is the full scope used by cmd/schedcheck -enumerate: two
// concurrent operations of any kind with arguments in {1,2,3} over the
// lists {}, {1}, {2}, {1,2} and {1,3}. At this scope VBL accepts all
// 175,136 correct schedules of the 278,000 generated, while Lazy rejects
// 25,548 of them and Harris-Michael 29,360 (of its adjusted-model
// scope). Exhausting it takes a few CPU-minutes.
func DefaultScope() Scope {
	return Scope{
		Initials: [][]int64{{}, {1}, {2}, {1, 2}, {1, 3}},
		Args:     []int64{1, 2, 3},
		Kinds:    []OpKind{OpInsert, OpRemove, OpContains},
	}
}

// QuickScope is a reduced scope small enough for the regular test suite
// while still containing Figure-2-style rejections for Lazy and
// Figure-3-style rejections for Harris-Michael: arguments {1,2} over
// the lists {1} and {1,2}.
func QuickScope() Scope {
	return Scope{
		Initials: [][]int64{{1}, {1, 2}},
		Args:     []int64{1, 2},
		Kinds:    []OpKind{OpInsert, OpRemove, OpContains},
	}
}

// OptimalityReport summarizes an exhaustive small-scope run of
// Definition 2 for one algorithm.
type OptimalityReport struct {
	Algorithm Algorithm
	// Schedules is the number of distinct schedules generated (|§|).
	Schedules int
	// Correct is the number of correct schedules among them.
	Correct int
	// Accepted is how many correct schedules the algorithm accepts.
	Accepted int
	// RejectedExamples holds up to MaxExamples rejected correct
	// schedules for diagnostics.
	RejectedExamples []Schedule
}

// MaxExamples caps the rejected examples retained in a report.
const MaxExamples = 3

// Optimal reports whether the algorithm accepted every correct schedule
// in the scope.
func (r OptimalityReport) Optimal() bool { return r.Accepted == r.Correct }

// String renders the report one line.
func (r OptimalityReport) String() string {
	return fmt.Sprintf("%s: accepted %d/%d correct schedules (|§|=%d)",
		r.Algorithm, r.Accepted, r.Correct, r.Schedules)
}

// CheckOptimality exhaustively generates every schedule of every pair of
// operations in the scope, filters the correct ones with the oracle, and
// counts how many the algorithm accepts — the empirical Theorem 3.
func CheckOptimality(alg Algorithm, sc Scope) OptimalityReport {
	rep := OptimalityReport{Algorithm: alg}
	seen := make(map[string]struct{})
	for _, initial := range sc.Initials {
		for _, k0 := range sc.Kinds {
			for _, a0 := range sc.Args {
				for _, k1 := range sc.Kinds {
					for _, a1 := range sc.Args {
						ops := []OpSpec{{Kind: k0, Arg: a0}, {Kind: k1, Arg: a1}}
						for _, s := range GenerateAll(initial, ops, sc.Adjusted, 0) {
							key := s.Key()
							if _, dup := seen[key]; dup {
								continue
							}
							seen[key] = struct{}{}
							rep.Schedules++
							if ok, _ := Correct(s); !ok {
								continue
							}
							rep.Correct++
							if Accepts(alg, s) {
								rep.Accepted++
							} else if len(rep.RejectedExamples) < MaxExamples {
								rep.RejectedExamples = append(rep.RejectedExamples, s)
							}
						}
					}
				}
			}
		}
	}
	return rep
}
