package schedule

import (
	"fmt"
	"strings"
)

// Accepts reports whether algorithm alg has an execution that exports
// schedule s — Definition 2's acceptance relation. It performs a
// depth-first search over all interleavings of the algorithm's step
// machines, including the finality speculation at attempt starts, with
// visited-state memoization for termination (restart loops revisit
// states; without memoization the search would not terminate).
//
// The algorithm's reference model must match the schedule's: VBL and
// Lazy are analyzed against the standard sequential code, Harris-Michael
// against the adjusted one, and the sequential "algorithm" against
// either. A model mismatch returns false.
func Accepts(alg Algorithm, s Schedule) bool {
	if alg != AlgSeq && s.Adjusted != alg.Adjusted() {
		return false
	}
	h := NewHeap(s.Initial)
	ms := make([]machine, len(s.Ops))
	for i, spec := range s.Ops {
		ms[i] = newAlgMachine(alg, i, spec, s.Adjusted)
	}
	visited := make(map[string]struct{})
	return acceptDFS(h, ms, s.Events, 0, visited)
}

func acceptDFS(h *Heap, ms []machine, events []Event, pos int, visited map[string]struct{}) bool {
	allDone := true
	for _, m := range ms {
		if !m.done() {
			allDone = false
			break
		}
	}
	if allDone {
		return pos == len(events)
	}

	sig := stateSignature(h, ms, pos)
	if _, dup := visited[sig]; dup {
		return false
	}
	visited[sig] = struct{}{}

	for i, m := range ms {
		if m.done() {
			continue
		}
		if am, ok := m.(attemptMachine); ok {
			if am.poisoned() {
				continue
			}
			if am.needsFinalityChoice() {
				for _, final := range []bool{true, false} {
					h2, ms2 := cloneState(h, ms)
					ms2[i].(attemptMachine).setFinal(final)
					if acceptDFS(h2, ms2, events, pos, visited) {
						return true
					}
				}
				continue
			}
		}
		if !m.enabled(h) {
			continue
		}
		h2, ms2 := cloneState(h, ms)
		ev := ms2[i].step(h2)
		if am, ok := ms2[i].(attemptMachine); ok && am.poisoned() {
			continue
		}
		if ev == nil {
			if acceptDFS(h2, ms2, events, pos, visited) {
				return true
			}
			continue
		}
		if pos < len(events) && eventsEqual(*ev, events[pos]) {
			if acceptDFS(h2, ms2, events, pos+1, visited) {
				return true
			}
		}
		// An exported event that does not match the next schedule event
		// prunes this branch.
	}
	return false
}

func cloneState(h *Heap, ms []machine) (*Heap, []machine) {
	h2 := h.Clone()
	ms2 := make([]machine, len(ms))
	for i, m := range ms {
		ms2[i] = m.clone()
	}
	return h2, ms2
}

func eventsEqual(a, b Event) bool {
	return a.Op == b.Op && a.Kind == b.Kind && a.Node == b.Node &&
		a.Val == b.Val && a.Target == b.Target && a.Result == b.Result
}

// stateSignature serializes the search state for memoization.
func stateSignature(h *Heap, ms []machine, pos int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "p%d", pos)
	for id := NodeID(0); id < h.nextID; id++ {
		n, ok := h.nodes[id]
		if !ok {
			continue
		}
		fmt.Fprintf(&b, "|%d:%d,%d,%v,%d", id, n.val, n.next, n.deleted, n.lock)
	}
	for _, m := range ms {
		fmt.Fprintf(&b, "#%s", machineSignature(m))
	}
	return b.String()
}

func machineSignature(m machine) string {
	switch mm := m.(type) {
	case *seqMachine:
		return fmt.Sprintf("s%d,%d,%d,%d,%d,%d,%d,%v", mm.op, mm.pc, mm.prev, mm.curr, mm.tval, mm.tnext, mm.created, mm.retval)
	case *vblMachine:
		return "v" + mm.algBase.signature()
	case *lazyMachine:
		return "z" + mm.algBase.signature()
	case *harrisMachine:
		return "h" + mm.algBase.signature()
	case *coarseMachine:
		return "c" + mm.algBase.signature() + "/" + machineSignature(mm.seq)
	case *hohMachine:
		return "w" + mm.algBase.signature()
	case *optimisticMachine:
		return "o" + mm.algBase.signature() + fmt.Sprintf(",%d", mm.vpred)
	default:
		panic("schedule: unknown machine type")
	}
}

func (m *algBase) signature() string {
	return fmt.Sprintf("%d,%d,%v,%v,%d,%d,%d,%d,%d,%v",
		m.op, m.pc, m.final, m.finalChosen, m.prev, m.curr, m.tval, m.tnext, m.created, m.retval)
}
