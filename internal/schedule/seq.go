package schedule

// Step machines for the sequential implementation LL (Algorithm 1) and
// for the adjusted sequential implementation of §2.3 (removals are
// logical marks; traversing update operations physically unlink marked
// nodes). Running interleavings of these machines over a shared abstract
// heap generates exactly the schedule space § of the paper.

// machine is a resumable operation: each Step performs at most one
// shared-memory access against the heap and returns the exported event,
// or nil for an internal step.
type machine interface {
	// done reports whether the operation has returned.
	done() bool
	// result returns the operation's response (valid once done).
	result() bool
	// enabled reports whether the machine can take a step now (it is
	// false while blocked on a lock held by another operation).
	enabled(h *Heap) bool
	// step advances by one step.
	step(h *Heap) *Event
	// clone returns an independent copy for backtracking searches.
	clone() machine
}

// seqMachine program counters.
const (
	sReadNext    = iota // curr <- read(prev.next)
	sCheckMark          // adjusted updates: internal read of curr's mark
	sHelpRead           // helping: tnext <- read(curr.next)
	sHelpWrite          // helping: write(prev.next, tnext)
	sReadVal            // tval <- read(curr.val), then branch
	sNewNode            // insert path: X <- new-node(v, curr)
	sWriteLink          // insert path: write(prev.next, X)
	sReadTNext          // remove path: tnext <- read(curr.next)
	sUnlink             // standard remove: write(prev.next, tnext)
	sMark               // adjusted remove: mark(curr)
	sCheckLanded        // adjusted contains: internal mark read of landing node
	sReturn             // emit response
	sDone
)

// seqMachine executes one LL operation (standard or adjusted) as a step
// machine. It is the reference semantics that defines schedules.
type seqMachine struct {
	op       int
	spec     OpSpec
	adjusted bool

	pc         int
	prev, curr NodeID
	tval       int64
	tnext      NodeID
	created    NodeID
	retval     bool
}

// newSeqMachine returns a machine for op index op executing spec.
func newSeqMachine(op int, spec OpSpec, adjusted bool) *seqMachine {
	return &seqMachine{op: op, spec: spec, adjusted: adjusted, pc: sReadNext, prev: Head}
}

func (m *seqMachine) done() bool           { return m.pc == sDone }
func (m *seqMachine) result() bool         { return m.retval }
func (m *seqMachine) enabled(h *Heap) bool { return m.pc != sDone }

func (m *seqMachine) clone() machine {
	c := *m
	return &c
}

// helps reports whether this operation participates in physical removal
// of marked nodes: adjusted-model updates do, contains never does.
func (m *seqMachine) helps() bool {
	return m.adjusted && m.spec.Kind != OpContains
}

func (m *seqMachine) step(h *Heap) *Event {
	v := m.spec.Arg
	switch m.pc {
	case sReadNext:
		m.curr = h.Next(m.prev)
		if m.helps() {
			m.pc = sCheckMark
		} else {
			m.pc = sReadVal
		}
		return &Event{Op: m.op, Kind: EvReadNext, Node: m.prev, Target: m.curr}

	case sCheckMark: // internal
		if h.Deleted(m.curr) {
			m.pc = sHelpRead
		} else {
			m.pc = sReadVal
		}
		return nil

	case sHelpRead:
		m.tnext = h.Next(m.curr)
		m.pc = sHelpWrite
		return &Event{Op: m.op, Kind: EvReadNext, Node: m.curr, Target: m.tnext}

	case sHelpWrite:
		h.SetNext(m.prev, m.tnext)
		ev := &Event{Op: m.op, Kind: EvWriteNext, Node: m.prev, Target: m.tnext}
		m.curr = m.tnext
		m.pc = sCheckMark
		return ev

	case sReadVal:
		m.tval = h.Val(m.curr)
		ev := &Event{Op: m.op, Kind: EvReadVal, Node: m.curr, Val: m.tval}
		if m.tval < v {
			m.prev = m.curr
			m.pc = sReadNext
			return ev
		}
		switch m.spec.Kind {
		case OpInsert:
			if m.tval != v {
				m.pc = sNewNode
			} else {
				m.retval = false
				m.pc = sReturn
			}
		case OpRemove:
			if m.tval == v {
				m.pc = sReadTNext
			} else {
				m.retval = false
				m.pc = sReturn
			}
		case OpContains:
			if m.adjusted {
				m.pc = sCheckLanded
			} else {
				m.retval = m.tval == v
				m.pc = sReturn
			}
		}
		return ev

	case sNewNode:
		m.created = h.NewNode(v, m.curr)
		m.pc = sWriteLink
		return &Event{Op: m.op, Kind: EvNewNode, Node: m.created, Val: v, Target: m.curr}

	case sWriteLink:
		h.SetNext(m.prev, m.created)
		m.retval = true
		m.pc = sReturn
		return &Event{Op: m.op, Kind: EvWriteNext, Node: m.prev, Target: m.created}

	case sReadTNext:
		m.tnext = h.Next(m.curr)
		if m.adjusted {
			m.pc = sMark
		} else {
			m.pc = sUnlink
		}
		return &Event{Op: m.op, Kind: EvReadNext, Node: m.curr, Target: m.tnext}

	case sUnlink:
		h.SetNext(m.prev, m.tnext)
		m.retval = true
		m.pc = sReturn
		return &Event{Op: m.op, Kind: EvWriteNext, Node: m.prev, Target: m.tnext}

	case sMark:
		h.SetDeleted(m.curr)
		m.retval = true
		m.pc = sReturn
		return &Event{Op: m.op, Kind: EvMark, Node: m.curr}

	case sCheckLanded: // internal
		m.retval = m.tval == m.spec.Arg && !h.Deleted(m.curr)
		m.pc = sReturn
		return nil

	case sReturn:
		m.pc = sDone
		return &Event{Op: m.op, Kind: EvReturn, Result: m.retval}

	default:
		panic("schedule: step on completed machine")
	}
}
