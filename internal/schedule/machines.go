package schedule

// Step machines for the three concurrent algorithms, used by the
// acceptance search: given a schedule σ, "does algorithm A accept σ"
// means "is there an execution of A's machines whose exported events are
// exactly σ".
//
// Machines distinguish *exported* steps (the reads/writes/creations that
// the paper's schedule mapping keeps: those of the operation's last
// traversal, plus effective writes, node creations and successful
// logical deletions) from *internal* steps (lock handling, validation
// reads, deletion-mark metadata in the standard model, and everything
// belonging to attempts that get restarted). Whether the current attempt
// is the exporting one cannot be known in advance, so it is a
// speculation point: the acceptance search forks on setFinal(true/false)
// at each attempt start, and a machine that discovers its guess was
// wrong — a "non-final" attempt that would have completed, or a "final"
// attempt that fails validation — poisons itself, pruning the branch.
//
// Fidelity notes (documented deviations from the production Go code in
// internal/core):
//
//   - The abstract VBL machine restarts failed attempts from head, not
//     from prev. Restarting from prev is a performance optimization; it
//     makes the exported "last traversal" a composite of attempt
//     prefixes, which complicates the schedule mapping without changing
//     the accepted set (the composite read sequence is itself a legal
//     LL traversal). Head-restart keeps exported attempts literal.
//   - The abstract machines skip the production code's lock-free
//     pre-validation; the search explores all timings anyway.

// attemptMachine is a machine with restartable attempts that must be
// told which attempt exports its steps.
type attemptMachine interface {
	machine
	needsFinalityChoice() bool
	setFinal(final bool)
	poisoned() bool
}

// Algorithm identifies an implementation for the acceptance search.
type Algorithm uint8

const (
	// AlgSeq is the sequential code itself (standard or adjusted per the
	// schedule); accepting σ means σ is an interleaving of the
	// sequential code, i.e. σ ∈ §.
	AlgSeq Algorithm = iota
	// AlgVBL is the paper's Value-Based List (standard model).
	AlgVBL
	// AlgLazy is the Lazy Linked List (standard model).
	AlgLazy
	// AlgHarris is the Harris-Michael list (adjusted model).
	AlgHarris
)

// String returns the algorithm name.
func (a Algorithm) String() string {
	switch a {
	case AlgSeq:
		return "sequential"
	case AlgVBL:
		return "vbl"
	case AlgLazy:
		return "lazy"
	case AlgHarris:
		return "harris-michael"
	case AlgCoarse:
		return "coarse"
	case AlgHOH:
		return "hand-over-hand"
	case AlgOptimistic:
		return "optimistic"
	default:
		return "alg(?)"
	}
}

// Adjusted reports whether the algorithm's reference model is the
// adjusted sequential implementation (marks + delegated unlinking).
func (a Algorithm) Adjusted() bool { return a == AlgHarris }

// newAlgMachine builds the op-th machine of alg.
func newAlgMachine(alg Algorithm, op int, spec OpSpec, adjusted bool) machine {
	switch alg {
	case AlgSeq:
		return newSeqMachine(op, spec, adjusted)
	case AlgVBL:
		return &vblMachine{algBase: newAlgBase(op, spec)}
	case AlgLazy:
		return &lazyMachine{algBase: newAlgBase(op, spec)}
	case AlgHarris:
		return &harrisMachine{algBase: newAlgBase(op, spec)}
	case AlgCoarse:
		return newCoarseMachine(op, spec)
	case AlgHOH:
		return newHOHMachine(op, spec)
	case AlgOptimistic:
		return newOptimisticMachine(op, spec)
	default:
		panic("schedule: unknown algorithm")
	}
}

// Shared program counters for the algorithm machines. Not every machine
// uses every state.
const (
	aStart           = iota // attempt start (finality speculation point)
	aReadNext               // curr <- read(prev.next)
	aCheckMark              // harris: internal mark check of curr
	aHelpRead               // harris: succ <- read(curr.next)
	aHelpCAS                // harris: CAS unlink of marked curr
	aReadVal                // tval <- read(curr.val); branch
	aInsNew                 // create the new node
	aInsLockPrev            // vbl: acquire prev's lock
	aInsValidate            // vbl: validate under prev's lock
	aInsWrite               // link the new node
	aInsCAS                 // harris: CAS link
	aLockPrev               // lazy: acquire prev's lock
	aLockCurr               // lazy: acquire curr's lock
	aValidate               // lazy: post-lock validation
	aAfterValidate          // lazy: presence check under locks
	aRemReadNext            // tnext <- read(curr.next)
	aRemLockPrev            // vbl: lockNextAtValue's acquisition
	aRemValidatePrev        // vbl: value validation under prev's lock
	aRemReread              // vbl: curr <- prev.next under lock
	aRemLockCurr            // vbl: acquire curr's lock
	aRemValidateCurr        // vbl: validate curr.next == tnext
	aRemMarkCAS             // harris: CAS logical deletion
	aRemUnlinkTry           // harris: best-effort physical unlink (internal)
	aRemMark                // vbl/lazy: set deletion mark (internal metadata)
	aRemUnlink              // unlink write
	aContainsCheck          // lazy/harris: internal mark check of landing node
	aReturn
	aDone
	aPoisoned
)

// newAlgBase returns the initial registers of an algorithm machine.
func newAlgBase(op int, spec OpSpec) algBase {
	return algBase{op: op, spec: spec, pc: aStart, prev: Head, curr: None, tnext: None, created: None}
}

// algBase carries the registers shared by the three machines.
type algBase struct {
	op   int
	spec OpSpec

	pc          int
	final       bool
	finalChosen bool
	freeRun     bool // progress exploration: no exports, no speculation

	prev, curr NodeID
	tval       int64
	tnext      NodeID
	created    NodeID
	retval     bool
}

func (m *algBase) done() bool     { return m.pc == aDone }
func (m *algBase) result() bool   { return m.retval }
func (m *algBase) poisoned() bool { return m.pc == aPoisoned }

func (m *algBase) needsFinalityChoice() bool {
	// contains never restarts: it is always its own final attempt.
	return !m.freeRun && m.pc == aStart && !m.finalChosen && m.spec.Kind != OpContains
}

func (m *algBase) setFinal(final bool) {
	m.final = final
	m.finalChosen = true
}

// restart begins a new attempt (the previous one failed validation).
// A final attempt must not fail — poison instead.
func (m *algBase) restart() {
	if !m.freeRun && m.final {
		m.pc = aPoisoned
		return
	}
	m.pc = aStart
	m.finalChosen = false
	m.prev = Head
	m.curr = None
	if !m.freeRun {
		m.created = None // free runs keep their node for reuse
	}
}

// complete moves to the return step; a non-final attempt must not
// complete — poison instead.
func (m *algBase) complete(result bool) {
	if !m.freeRun && !m.final && m.spec.Kind != OpContains {
		m.pc = aPoisoned
		return
	}
	m.retval = result
	m.pc = aReturn
}

// export wraps an event so that only final attempts emit it.
func (m *algBase) export(e Event) *Event {
	if m.freeRun || (!m.final && m.spec.Kind != OpContains) {
		return nil
	}
	return &e
}

// beginTraversal is the common aStart handling.
func (m *algBase) beginTraversal() {
	if !m.freeRun && m.spec.Kind == OpContains {
		m.final = true
		m.finalChosen = true
	}
	m.prev = Head
	m.pc = aReadNext
}

// traversalReadNext performs curr <- read(prev.next).
func (m *algBase) traversalReadNext(h *Heap, next int) *Event {
	m.curr = h.Next(m.prev)
	m.pc = next
	return m.export(Event{Op: m.op, Kind: EvReadNext, Node: m.prev, Target: m.curr})
}

// emitReturn emits the response event.
func (m *algBase) emitReturn() *Event {
	m.pc = aDone
	return &Event{Op: m.op, Kind: EvReturn, Result: m.retval}
}
