package schedule

// The two counterexample schedules of the paper, constructed by running
// the sequential machines under the figures' interleavings.

// Figure2 returns the schedule of Figure 2: the initial list holds {1};
// insert(2) (op 0) and insert(1) (op 1) run concurrently. insert(2)
// traverses past the node holding 1 and creates its new node; before
// insert(2) links it, insert(1) reads the node holding 1 and returns
// false. The schedule is correct, VBL accepts it, and the Lazy list
// rejects it: in Lazy, insert(1) cannot return false without holding
// the lock that insert(2) already holds across its node creation.
func Figure2() Schedule {
	ops := []OpSpec{
		{Kind: OpInsert, Arg: 2}, // op 0
		{Kind: OpInsert, Arg: 1}, // op 1
	}
	// Step budget per op (standard machine):
	//   op0 insert(2): Rnext(h)=X1; Rval(X1)=1; Rnext(X1)=tail;
	//                  Rval(tail)=+inf; new(X2); Wnext(X1=X2); ret(true)
	//   op1 insert(1): Rnext(h)=X1; Rval(X1)=1; ret(false)
	order := []int{
		0,          // op0: Rnext(h)
		1,          // op1: Rnext(h)
		0, 0, 0, 0, // op0: Rval(X1), Rnext(X1), Rval(tail), new(X2)
		1, 1, // op1: Rval(X1), ret(false)   <-- before op0's write
		0, 0, // op0: Wnext(X1=X2), ret(true)
	}
	s, err := Run([]int64{1}, ops, false, order)
	if err != nil {
		panic("schedule: Figure2 construction: " + err.Error())
	}
	return s
}

// Figure3 returns the schedule of Figure 3 in the adjusted model: the
// initial list holds {2,3,4}. Phase one runs insert(1) (op 0)
// concurrently with remove(2) (op 1): both read head, insert(1) links
// its node at the front, and remove(2) marks the node holding 2 but —
// because head's successor changed — cannot unlink it. Phase two runs
// insert(4) (op 2) concurrently with insert(3) (op 3): both traverse to
// the marked node, both read past it, insert(3) unlinks it first, and
// in the schedule insert(4)'s unlink write also takes effect before it
// reads on to return false. Harris-Michael rejects the schedule: the
// second unlink is a CAS that fails, forcing a restart from head.
func Figure3() Schedule {
	ops := []OpSpec{
		{Kind: OpInsert, Arg: 1}, // op 0
		{Kind: OpRemove, Arg: 2}, // op 1
		{Kind: OpInsert, Arg: 4}, // op 2
		{Kind: OpInsert, Arg: 3}, // op 3
	}
	// Adjusted machine steps (mc = internal mark check):
	//   op0 insert(1): Rnext(h)=N2; mc; Rval(N2)=2; new(N5,next=N2);
	//                  Wnext(h=N5); ret(true)
	//   op1 remove(2): Rnext(h)=N2; mc; Rval(N2)=2; Rnext(N2)=N3;
	//                  mark(N2); ret(true)
	//   op2 insert(4): Rnext(h)=N5; mc; Rval(N5)=1; Rnext(N5)=N2; mc;
	//                  Rnext(N2)=N3 (help); Wnext(N5=N3) (help); mc;
	//                  Rval(N3)=3; Rnext(N3)=N4; mc; Rval(N4)=4; ret(false)
	//   op3 insert(3): Rnext(h)=N5; mc; Rval(N5)=1; Rnext(N5)=N2; mc;
	//                  Rnext(N2)=N3 (help); Wnext(N5=N3) (help); mc;
	//                  Rval(N3)=3; ret(false)
	order := []int{
		// Phase 1: insert(1) ∥ remove(2).
		0, 0, // op0: Rnext(h), mc
		1, 1, // op1: Rnext(h), mc
		0, 0, 0, 0, // op0: Rval(N2), new(N5), Wnext(h), ret(true)
		1, 1, 1, 1, // op1: Rval(N2), Rnext(N2), mark(N2), ret(true)
		// Phase 2: insert(4) ∥ insert(3), both past the marked node.
		2, 2, 2, 2, 2, // op2: Rnext(h), mc, Rval(N5), Rnext(N5), mc
		3, 3, 3, 3, 3, // op3: same five steps
		2,       // op2: Rnext(N2)=N3 (helping read)
		3,       // op3: Rnext(N2)=N3 (helping read)
		3,       // op3: Wnext(N5=N3) — unlinks first
		2,       // op2: Wnext(N5=N3) — the write Harris cannot perform
		3, 3, 3, // op3: mc, Rval(N3)=3, ret(false)
		2, 2, 2, 2, 2, 2, // op2: mc, Rval(N3), Rnext(N3), mc, Rval(N4), ret(false)
	}
	s, err := Run([]int64{2, 3, 4}, ops, true, order)
	if err != nil {
		panic("schedule: Figure3 construction: " + err.Error())
	}
	return s
}

// ReincarnationSchedule returns the schedule that showcases the
// *value-aware* half of the try-lock (§3.2's remove discussion: "one
// could have removed and inserted v while the thread was asleep").
// Initial list {5}; remove(5) (op 0) performs its traversal and its
// read of the victim's successor, then goes to sleep; remove(5) (op 1)
// deletes the original node entirely and insert(5) (op 2) links a NEW
// node holding 5; finally op 0 wakes and performs its unlink write.
//
// The schedule is correct — linearize op1, op2, op0 — and VBL accepts
// it: op 0's lockNextAtValue(5) validates the successor BY VALUE, so
// the fresh node is as good as the one it saw. The Lazy list rejects
// it: its validation pins the very node the traversal read, which is
// gone.
func ReincarnationSchedule() Schedule {
	ops := []OpSpec{
		{Kind: OpRemove, Arg: 5}, // op 0: the sleeper
		{Kind: OpRemove, Arg: 5}, // op 1: removes the original node
		{Kind: OpInsert, Arg: 5}, // op 2: reincarnates 5 in a fresh node
	}
	// op0 remove(5): Rnext(h)=N2; Rval(N2)=5; Rnext(N2)=tail;
	//                Wnext(h=tail); ret(true)
	// op1 remove(5): same five steps, completing first
	// op2 insert(5): Rnext(h)=tail; Rval(tail)=+inf; new(N3,next=tail);
	//                Wnext(h=N3); ret(true)
	order := []int{
		0, 0, 0, // op0: traversal reads + successor read, then sleeps
		1, 1, 1, 1, 1, // op1: removes N2 outright
		2, 2, 2, 2, 2, // op2: inserts the fresh N3 holding 5
		0, 0, // op0: Wnext(h=tail) — unlinking the reincarnation — ret(true)
	}
	s, err := Run([]int64{5}, ops, false, order)
	if err != nil {
		panic("schedule: ReincarnationSchedule construction: " + err.Error())
	}
	return s
}

// FailedRemoveSchedule returns the remove-flavoured sibling of Figure 2:
// the initial list holds {1}; insert(2) (op 0) and remove(2) (op 1) run
// concurrently. remove(2) traverses, finds no 2, and returns false
// after insert(2) has created its node but before insert(2) links it.
// The schedule is correct (linearize the remove first), VBL accepts it
// — a failed remove touches no metadata — and the Lazy list rejects it:
// Lazy's remove(2) can only return false while holding the very locks
// insert(2) holds across its node creation and write.
func FailedRemoveSchedule() Schedule {
	ops := []OpSpec{
		{Kind: OpInsert, Arg: 2}, // op 0
		{Kind: OpRemove, Arg: 2}, // op 1
	}
	// op0 insert(2): Rnext(h)=N2; Rval(N2)=1; Rnext(N2)=tail;
	//                Rval(tail)=+inf; new(N3); Wnext(N2=N3); ret(true)
	// op1 remove(2): Rnext(h)=N2; Rval(N2)=1; Rnext(N2)=tail;
	//                Rval(tail)=+inf; ret(false)
	order := []int{
		0, 0, 0, 0, 0, // op0 up to and including new(N3)
		1, 1, 1, 1, 1, // op1 completes, returning false
		0, 0, // op0: Wnext(N2=N3), ret(true)
	}
	s, err := Run([]int64{1}, ops, false, order)
	if err != nil {
		panic("schedule: FailedRemoveSchedule construction: " + err.Error())
	}
	return s
}
