package schedule

import (
	"strings"
	"testing"
)

// --- heap ---------------------------------------------------------------

func TestHeapInitialLayout(t *testing.T) {
	h := NewHeap([]int64{1, 3})
	if h.Val(Head) != MinVal || h.Val(Tail) != MaxVal {
		t.Fatal("sentinel values wrong")
	}
	n1 := h.Next(Head)
	n3 := h.Next(n1)
	if h.Val(n1) != 1 || h.Val(n3) != 3 || h.Next(n3) != Tail {
		t.Fatalf("initial chain wrong: %s", h.Dump())
	}
	got := h.Reachable(false)
	if len(got) != 2 || got[0] != 1 || got[1] != 3 {
		t.Fatalf("Reachable = %v", got)
	}
}

func TestHeapRejectsUnsortedInitial(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("unsorted initial list accepted")
		}
	}()
	NewHeap([]int64{2, 1})
}

func TestHeapCloneIndependence(t *testing.T) {
	h := NewHeap([]int64{1})
	c := h.Clone()
	n1 := h.Next(Head)
	h.SetNext(Head, Tail)
	h.SetDeleted(n1)
	if c.Next(Head) != n1 || c.Deleted(n1) {
		t.Fatal("clone shares state with original")
	}
}

func TestHeapLocks(t *testing.T) {
	h := NewHeap(nil)
	if h.LockedBy(Head) != -1 {
		t.Fatal("fresh node reported locked")
	}
	if !h.TryLock(Head, 3) {
		t.Fatal("TryLock on free node failed")
	}
	if h.TryLock(Head, 4) {
		t.Fatal("TryLock succeeded on held node")
	}
	if h.LockedBy(Head) != 3 {
		t.Fatalf("LockedBy = %d, want 3", h.LockedBy(Head))
	}
	h.Unlock(Head, 3)
	if h.LockedBy(Head) != -1 {
		t.Fatal("node still locked after Unlock")
	}
}

func TestHeapReachableLiveOnly(t *testing.T) {
	h := NewHeap([]int64{1, 2, 3})
	n2 := h.Next(h.Next(Head))
	h.SetDeleted(n2)
	all := h.Reachable(false)
	live := h.Reachable(true)
	if len(all) != 3 || len(live) != 2 {
		t.Fatalf("all=%v live=%v", all, live)
	}
	if live[0] != 1 || live[1] != 3 {
		t.Fatalf("live = %v, want [1 3]", live)
	}
}

func TestHeapReachableCycleSafe(t *testing.T) {
	h := NewHeap([]int64{1, 2})
	n1 := h.Next(Head)
	n2 := h.Next(n1)
	h.SetNext(n2, n1) // cycle, as a corrupted schedule could produce
	got := h.Reachable(false)
	if len(got) != 2 {
		t.Fatalf("cycle traversal returned %v", got)
	}
	if !strings.Contains(h.Dump(), "CYCLE") {
		t.Fatal("Dump did not flag the cycle")
	}
}

// --- sequential machines and Run ----------------------------------------

// runSolo executes a single op to completion and returns its schedule.
func runSolo(t *testing.T, initial []int64, spec OpSpec, adjusted bool) Schedule {
	t.Helper()
	s, err := RunToCompletion(initial, []OpSpec{spec}, adjusted, nil)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestSeqInsertSchedule(t *testing.T) {
	s := runSolo(t, []int64{1, 3}, OpSpec{Kind: OpInsert, Arg: 2}, false)
	res, ok := s.Results()
	if !ok || !res[0] {
		t.Fatalf("insert(2) result = %v", res)
	}
	final := FinalMembers(s)
	for _, v := range []int64{1, 2, 3} {
		if !final[v] {
			t.Fatalf("final members %v missing %d", sortedKeys(final), v)
		}
	}
	// Event shape: Rnext, Rval, Rnext, Rval, new, Wnext, ret.
	kinds := []EventKind{EvReadNext, EvReadVal, EvReadNext, EvReadVal, EvNewNode, EvWriteNext, EvReturn}
	if len(s.Events) != len(kinds) {
		t.Fatalf("event count %d, want %d:\n%s", len(s.Events), len(kinds), s)
	}
	for i, k := range kinds {
		if s.Events[i].Kind != k {
			t.Fatalf("event %d kind %v, want %v:\n%s", i, s.Events[i].Kind, k, s)
		}
	}
}

func TestSeqInsertDuplicate(t *testing.T) {
	s := runSolo(t, []int64{2}, OpSpec{Kind: OpInsert, Arg: 2}, false)
	res, _ := s.Results()
	if res[0] {
		t.Fatal("insert of present value returned true")
	}
	if got := FinalMembers(s); len(got) != 1 || !got[2] {
		t.Fatalf("final members %v", sortedKeys(got))
	}
}

func TestSeqRemoveSchedules(t *testing.T) {
	hit := runSolo(t, []int64{2}, OpSpec{Kind: OpRemove, Arg: 2}, false)
	res, _ := hit.Results()
	if !res[0] {
		t.Fatal("remove of present value returned false")
	}
	if got := FinalMembers(hit); len(got) != 0 {
		t.Fatalf("final members %v after remove", sortedKeys(got))
	}
	miss := runSolo(t, []int64{1}, OpSpec{Kind: OpRemove, Arg: 2}, false)
	res, _ = miss.Results()
	if res[0] {
		t.Fatal("remove of absent value returned true")
	}
}

func TestSeqContainsSchedules(t *testing.T) {
	for _, tc := range []struct {
		initial []int64
		arg     int64
		want    bool
	}{
		{[]int64{5}, 5, true},
		{[]int64{5}, 4, false},
		{nil, 1, false},
		{[]int64{1, 2, 3}, 3, true},
	} {
		s := runSolo(t, tc.initial, OpSpec{Kind: OpContains, Arg: tc.arg}, false)
		res, _ := s.Results()
		if res[0] != tc.want {
			t.Fatalf("contains(%d) on %v = %v, want %v", tc.arg, tc.initial, res[0], tc.want)
		}
	}
}

func TestAdjustedRemoveMarksOnly(t *testing.T) {
	s := runSolo(t, []int64{2, 3}, OpSpec{Kind: OpRemove, Arg: 2}, true)
	res, _ := s.Results()
	if !res[0] {
		t.Fatal("adjusted remove returned false")
	}
	var sawMark, sawWrite bool
	for _, e := range s.Events {
		if e.Kind == EvMark {
			sawMark = true
		}
		if e.Kind == EvWriteNext {
			sawWrite = true
		}
	}
	if !sawMark || sawWrite {
		t.Fatalf("adjusted remove events wrong (mark=%v write=%v):\n%s", sawMark, sawWrite, s)
	}
	// The node is logically deleted but still reachable.
	h := Replay(s)
	if got := h.Reachable(false); len(got) != 2 {
		t.Fatalf("raw chain %v, want both nodes", got)
	}
	if got := h.Reachable(true); len(got) != 1 || got[0] != 3 {
		t.Fatalf("live chain %v, want [3]", got)
	}
}

func TestAdjustedTraversalHelps(t *testing.T) {
	// remove(2) marks; then insert(4) must unlink the marked node on its
	// way past (exported helping write).
	ops := []OpSpec{{Kind: OpRemove, Arg: 2}, {Kind: OpInsert, Arg: 4}}
	// Run remove to completion first, then insert.
	s, err := RunToCompletion([]int64{2, 3}, ops, true, []int{0, 0, 0, 0, 0, 0})
	if err != nil {
		t.Fatal(err)
	}
	var helpWrites int
	for _, e := range s.Events {
		if e.Kind == EvWriteNext && e.Op == 1 && e.Node == Head {
			helpWrites++
		}
	}
	if helpWrites != 1 {
		t.Fatalf("helping writes by insert = %d, want 1:\n%s", helpWrites, s)
	}
	res, _ := s.Results()
	if !res[0] || !res[1] {
		t.Fatalf("results = %v, want both true", res)
	}
	final := FinalMembers(s)
	if final[2] || !final[3] || !final[4] {
		t.Fatalf("final members %v, want {3,4}", sortedKeys(final))
	}
}

func TestRunRejectsBadOrders(t *testing.T) {
	ops := []OpSpec{{Kind: OpContains, Arg: 1}}
	if _, err := Run(nil, ops, false, []int{1}); err == nil {
		t.Fatal("out-of-range op index accepted")
	}
	if _, err := Run(nil, ops, false, []int{0}); err == nil {
		t.Fatal("incomplete order accepted")
	}
	if _, err := Run(nil, ops, false, []int{0, 0, 0, 0, 0}); err == nil {
		t.Fatal("order stepping a completed op accepted")
	}
}

// --- oracle ---------------------------------------------------------------

func TestOracleAcceptsSequentialComposition(t *testing.T) {
	// insert(2) fully before remove(2): trivially correct.
	ops := []OpSpec{{Kind: OpInsert, Arg: 2}, {Kind: OpRemove, Arg: 2}}
	s, err := RunToCompletion(nil, ops, false, nil)
	if err != nil {
		t.Fatal(err)
	}
	if ok, reason := Correct(s); !ok {
		t.Fatalf("sequential composition rejected: %s\n%s", reason, s)
	}
}

func TestOracleRejectsLostUpdate(t *testing.T) {
	// The paper's §2.2 example: insert(1) and insert(2) on the empty
	// list both read head and tail, then both write head.next — the
	// second write overwrites the first (lost update). Technically
	// linearizable as a history, but the extension σ̄ exposes it.
	ops := []OpSpec{{Kind: OpInsert, Arg: 1}, {Kind: OpInsert, Arg: 2}}
	order := []int{
		0, 0, // op0: Rnext(h)=tail, Rval(tail)
		1, 1, // op1: Rnext(h)=tail, Rval(tail)
		0, 0, // op0: new(N2), Wnext(h=N2)
		1, 1, // op1: new(N3), Wnext(h=N3) — overwrites op0's link
		0, 1, // returns
	}
	s, err := Run(nil, ops, false, order)
	if err != nil {
		t.Fatal(err)
	}
	res, _ := s.Results()
	if !res[0] || !res[1] {
		t.Fatalf("both inserts should report success: %v", res)
	}
	final := FinalMembers(s)
	if final[1] {
		t.Fatalf("expected 1 to be lost, final = %v", sortedKeys(final))
	}
	if ok, _ := Correct(s); ok {
		t.Fatalf("lost-update schedule accepted as correct:\n%s", s)
	}
}

func TestOracleRejectsNonAscendingReads(t *testing.T) {
	// remove(2) unlinks node 2 while contains(2)'s traversal sits just
	// past head; if the contains then reads a node with a smaller value
	// than one it already saw, it is not locally serializable. Build a
	// synthetic schedule by corrupting a correct one.
	s := runSolo(t, []int64{1, 2}, OpSpec{Kind: OpContains, Arg: 2}, false)
	if ok, _ := Correct(s); !ok {
		t.Fatal("baseline solo contains should be correct")
	}
	// Corrupt a read value so it descends.
	corrupted := s
	corrupted.Events = append([]Event(nil), s.Events...)
	for i := range corrupted.Events {
		if corrupted.Events[i].Kind == EvReadVal && corrupted.Events[i].Val == 2 {
			corrupted.Events[i].Val = 0
		}
	}
	if ok, _ := Correct(corrupted); ok {
		t.Fatal("descending-reads schedule accepted")
	}
}

func TestOracleRejectsWrongResult(t *testing.T) {
	s := runSolo(t, []int64{7}, OpSpec{Kind: OpContains, Arg: 7}, false)
	s.Events = append([]Event(nil), s.Events...)
	for i := range s.Events {
		if s.Events[i].Kind == EvReturn {
			s.Events[i].Result = false // lie about the outcome
		}
	}
	if ok, _ := Correct(s); ok {
		t.Fatal("schedule with wrong contains result accepted")
	}
}

func TestOracleRequiresReturns(t *testing.T) {
	s := runSolo(t, nil, OpSpec{Kind: OpContains, Arg: 1}, false)
	s.Events = s.Events[:len(s.Events)-1] // drop the return
	if ok, reason := Correct(s); ok || !strings.Contains(reason, "return") {
		t.Fatalf("return-less schedule verdict = %v (%s)", ok, reason)
	}
}

// --- acceptance -----------------------------------------------------------

func TestAllAlgorithmsAcceptSoloSchedules(t *testing.T) {
	specs := []OpSpec{
		{Kind: OpInsert, Arg: 2},
		{Kind: OpRemove, Arg: 1},
		{Kind: OpRemove, Arg: 2},
		{Kind: OpContains, Arg: 1},
		{Kind: OpContains, Arg: 2},
	}
	for _, adjusted := range []bool{false, true} {
		algs := []Algorithm{AlgSeq}
		if adjusted {
			algs = append(algs, AlgHarris)
		} else {
			algs = append(algs, AlgVBL, AlgLazy)
		}
		for _, spec := range specs {
			s := runSolo(t, []int64{1, 3}, spec, adjusted)
			for _, alg := range algs {
				if !Accepts(alg, s) {
					t.Errorf("%v does not accept solo %s (adjusted=%v):\n%s", alg, spec, adjusted, s)
				}
			}
		}
	}
}

func TestAcceptsRejectsModelMismatch(t *testing.T) {
	std := runSolo(t, []int64{1}, OpSpec{Kind: OpContains, Arg: 1}, false)
	adj := runSolo(t, []int64{1}, OpSpec{Kind: OpContains, Arg: 1}, true)
	if Accepts(AlgHarris, std) {
		t.Fatal("Harris accepted a standard-model schedule")
	}
	if Accepts(AlgVBL, adj) || Accepts(AlgLazy, adj) {
		t.Fatal("VBL/Lazy accepted an adjusted-model schedule")
	}
}

// --- the paper's figures ---------------------------------------------------

func TestFigure2(t *testing.T) {
	s := Figure2()
	if ok, reason := Correct(s); !ok {
		t.Fatalf("Figure 2 schedule should be correct: %s\n%s", reason, s)
	}
	if !Accepts(AlgVBL, s) {
		t.Fatalf("VBL must accept Figure 2:\n%s", s)
	}
	if Accepts(AlgLazy, s) {
		t.Fatalf("Lazy must reject Figure 2:\n%s", s)
	}
}

func TestFailedRemoveSchedule(t *testing.T) {
	s := FailedRemoveSchedule()
	if ok, reason := Correct(s); !ok {
		t.Fatalf("failed-remove schedule should be correct: %s\n%s", reason, s)
	}
	if !Accepts(AlgVBL, s) {
		t.Fatalf("VBL must accept the failed-remove schedule:\n%s", s)
	}
	if Accepts(AlgLazy, s) {
		t.Fatalf("Lazy must reject the failed-remove schedule:\n%s", s)
	}
}

func TestReincarnationSchedule(t *testing.T) {
	s := ReincarnationSchedule()
	if ok, reason := Correct(s); !ok {
		t.Fatalf("reincarnation schedule should be correct: %s\n%s", reason, s)
	}
	res, _ := s.Results()
	for i, r := range res {
		if !r {
			t.Fatalf("op %d should return true: %v", i, res)
		}
	}
	if got := FinalMembers(s); len(got) != 0 {
		t.Fatalf("final members = %v, want empty", sortedKeys(got))
	}
	if !Accepts(AlgVBL, s) {
		t.Fatalf("VBL must accept the reincarnation schedule (value-aware validation):\n%s", s)
	}
	if Accepts(AlgLazy, s) {
		t.Fatalf("Lazy must reject the reincarnation schedule:\n%s", s)
	}
}

func TestFigure3(t *testing.T) {
	s := Figure3()
	if !s.Adjusted {
		t.Fatal("Figure 3 must be an adjusted-model schedule")
	}
	if ok, reason := Correct(s); !ok {
		t.Fatalf("Figure 3 schedule should be correct: %s\n%s", reason, s)
	}
	if Accepts(AlgHarris, s) {
		t.Fatalf("Harris-Michael must reject Figure 3:\n%s", s)
	}
}

func TestFigure3PrefixAcceptedByHarris(t *testing.T) {
	// Phase one alone (insert(1) ∥ remove(2) with the failed unlink) IS
	// accepted by Harris — the rejection comes from phase two.
	ops := []OpSpec{{Kind: OpInsert, Arg: 1}, {Kind: OpRemove, Arg: 2}}
	order := []int{0, 0, 1, 1, 0, 0, 0, 0, 1, 1, 1, 1}
	s, err := Run([]int64{2, 3, 4}, ops, true, order)
	if err != nil {
		t.Fatal(err)
	}
	if ok, reason := Correct(s); !ok {
		t.Fatalf("phase-one schedule should be correct: %s\n%s", reason, s)
	}
	if !Accepts(AlgHarris, s) {
		t.Fatalf("Harris must accept phase one of Figure 3:\n%s", s)
	}
}

// --- small-scope optimality (empirical Theorem 3) --------------------------

func TestSmallScopeOptimality(t *testing.T) {
	if testing.Short() || raceEnabled {
		t.Skip("exhaustive check skipped in -short and -race modes")
	}
	// QuickScope keeps the suite fast; cmd/schedcheck -enumerate runs
	// the full DefaultScope (VBL: 175136/175136 correct schedules
	// accepted; Lazy rejects 25548; Harris rejects 29360).
	sc := QuickScope()
	vbl := CheckOptimality(AlgVBL, sc)
	t.Logf("%s", vbl)
	if !vbl.Optimal() {
		for _, ex := range vbl.RejectedExamples {
			t.Logf("VBL rejected:\n%s", ex)
		}
		t.Fatalf("VBL is not optimal in the small scope: %s", vbl)
	}

	lazy := CheckOptimality(AlgLazy, sc)
	t.Logf("%s", lazy)
	if lazy.Optimal() {
		t.Fatal("Lazy unexpectedly accepted every correct schedule — the Figure 2 family should be rejected")
	}
	if lazy.Correct != vbl.Correct || lazy.Schedules != vbl.Schedules {
		t.Fatalf("scope mismatch between runs: vbl=%s lazy=%s", vbl, lazy)
	}

	adj := sc
	adj.Adjusted = true
	harris := CheckOptimality(AlgHarris, adj)
	t.Logf("%s", harris)
	if harris.Accepted == 0 {
		t.Fatal("Harris accepted no correct adjusted schedules — model broken")
	}
	if harris.Optimal() {
		t.Fatal("Harris unexpectedly optimal — the Figure 3 family should be rejected")
	}
}
