package schedule

// Schedule reconstruction from captured traces (internal/obs/trace).
//
// A flight-recorder capture gives, for each completed operation, its
// spec, its result, and a handful of globally ordered checkpoints: the
// op-begin/op-end span boundaries, and — when a failpoint pause pinned
// the operation mid-update — the fire/release bracket separating its
// read phase from its write phase. Lift searches the interleavings of
// the sequential step machines consistent with those checkpoints for
// one the given algorithm accepts, turning a real execution into a
// machine-checked Schedule. It is the inverse direction of Accepts:
// Accepts asks "could the algorithm export this schedule?", Lift asks
// "which exportable schedule explains this trace?".

import (
	"fmt"
	"sort"
)

// TraceOp is one completed operation lifted from a capture. The
// position fields are drawn from one global monotone order (trace
// sequence numbers); only their relative order matters.
type TraceOp struct {
	// Spec and Result are the operation and its observed response.
	Spec   OpSpec
	Result bool
	// Begin and End are the op's invocation and return positions.
	Begin, End uint64
	// ReadsBefore, when nonzero, asserts every read-phase step of the
	// operation (traversal reads, node creation) happened before this
	// position — sound when the op was parked at a pre-lock failpoint
	// with no restart afterwards, because by the park it had finished
	// exactly its reads. Zero means unconstrained.
	ReadsBefore uint64
	// WritesAfter, when nonzero, asserts every write-phase step (link,
	// unlink, mark) and the return happened at or after this position
	// — the release of the park. Sound even when the op restarted
	// afterwards (a restart re-reads but cannot have written earlier).
	WritesAfter uint64
}

// checkpoint kinds, in tie-break order (ends and read-closures resolve
// before begins and write-openings at equal positions, which cannot
// happen with distinct trace seqs but keeps the sort total).
const (
	cpEnd = iota
	cpReadsBefore
	cpBegin
	cpWritesAfter
)

type checkpoint struct {
	pos  uint64
	kind int
	op   int
}

// liftBudget bounds the DFS node count; traces worth lifting are a few
// operations, far below it.
const liftBudget = 1 << 22

// Lift reconstructs a Schedule from trace-observed operations: an
// interleaving of the sequential machines that respects every
// checkpoint, reproduces every observed result, and is accepted by
// alg. The machine model (standard vs adjusted) follows alg. It
// returns an error when no such schedule exists within the search
// budget — which, for a trustworthy trace, means the algorithm cannot
// explain the execution.
func Lift(alg Algorithm, initial []int64, ops []TraceOp) (Schedule, error) {
	if len(ops) == 0 {
		return Schedule{}, fmt.Errorf("schedule: Lift needs at least one op")
	}
	adjusted := alg.Adjusted()
	specs := make([]OpSpec, len(ops))
	var cps []checkpoint
	for i, o := range ops {
		specs[i] = o.Spec
		if o.End <= o.Begin {
			return Schedule{}, fmt.Errorf("schedule: op %d (%s) has End <= Begin", i, o.Spec)
		}
		if o.ReadsBefore > 0 && (o.ReadsBefore <= o.Begin || o.ReadsBefore >= o.End) {
			return Schedule{}, fmt.Errorf("schedule: op %d (%s) has ReadsBefore outside its span", i, o.Spec)
		}
		if o.WritesAfter > 0 && (o.WritesAfter <= o.Begin || o.WritesAfter >= o.End) {
			return Schedule{}, fmt.Errorf("schedule: op %d (%s) has WritesAfter outside its span", i, o.Spec)
		}
		cps = append(cps, checkpoint{o.Begin, cpBegin, i}, checkpoint{o.End, cpEnd, i})
		if o.ReadsBefore > 0 {
			cps = append(cps, checkpoint{o.ReadsBefore, cpReadsBefore, i})
		}
		if o.WritesAfter > 0 {
			cps = append(cps, checkpoint{o.WritesAfter, cpWritesAfter, i})
		}
	}
	sort.Slice(cps, func(i, j int) bool {
		if cps[i].pos != cps[j].pos {
			return cps[i].pos < cps[j].pos
		}
		return cps[i].kind < cps[j].kind
	})

	l := &lifter{alg: alg, initial: initial, ops: ops, specs: specs, adjusted: adjusted, cps: cps}
	h := NewHeap(initial)
	ms := make([]machine, len(ops))
	for i, spec := range specs {
		ms[i] = newSeqMachine(i, spec, adjusted)
	}
	if s, ok := l.dfs(h, ms, liftState{}, nil); ok {
		return s, nil
	}
	if l.exhausted {
		return Schedule{}, fmt.Errorf("schedule: Lift search budget exhausted for %d ops", len(ops))
	}
	return Schedule{}, fmt.Errorf("schedule: no %v-accepted schedule is consistent with the trace (%d ops)", alg, len(ops))
}

// liftState is the checkpoint cursor plus the per-op phase gates it
// implies (recomputed on the fly from the cursor).
type liftState struct {
	cursor int
}

type lifter struct {
	alg       Algorithm
	initial   []int64
	ops       []TraceOp
	specs     []OpSpec
	adjusted  bool
	cps       []checkpoint
	budget    int
	exhausted bool
}

// passed reports whether the checkpoint of the given kind for op i
// lies strictly before the cursor.
func (l *lifter) passed(st liftState, kind, op int) bool {
	for c := 0; c < st.cursor; c++ {
		if l.cps[c].kind == kind && l.cps[c].op == op {
			return true
		}
	}
	return false
}

// readStep classifies the machine's next step as read-phase (traversal
// reads, mark checks, node creation) vs write-phase (link/unlink/mark
// writes and the return).
func readStep(pc int) bool {
	switch pc {
	case sReadNext, sCheckMark, sHelpRead, sReadVal, sNewNode, sReadTNext, sCheckLanded:
		return true
	}
	return false
}

// dfs explores: either pass the next checkpoint, or step an op the
// gates allow. order carries the interleaving so far; a complete,
// result-faithful interleaving is rebuilt with Run and kept only if
// the algorithm accepts it.
func (l *lifter) dfs(h *Heap, ms []machine, st liftState, order []int) (Schedule, bool) {
	l.budget++
	if l.budget > liftBudget {
		l.exhausted = true
		return Schedule{}, false
	}
	if st.cursor == len(l.cps) {
		for i, m := range ms {
			if !m.done() || m.result() != l.ops[i].Result {
				return Schedule{}, false
			}
		}
		s, err := Run(l.initial, l.specs, l.adjusted, order)
		if err != nil || !Accepts(l.alg, s) {
			return Schedule{}, false
		}
		return s, true
	}

	// Option 1: pass the next checkpoint, when its precondition holds.
	next := l.cps[st.cursor]
	ok := true
	switch next.kind {
	case cpEnd:
		// An op's span cannot close before the op has returned.
		ok = ms[next.op].done() && ms[next.op].result() == l.ops[next.op].Result
	case cpReadsBefore:
		// Once closed, the op may never read again; closing early on a
		// machine that still needs reads would dead-end, so prune now.
		ok = ms[next.op].done() || !readStep(ms[next.op].(*seqMachine).pc)
	}
	if ok {
		if s, found := l.dfs(h, ms, liftState{cursor: st.cursor + 1}, order); found {
			return s, true
		}
	}

	// Option 2: step an op the current gates allow.
	for i, m := range ms {
		if m.done() {
			continue
		}
		if !l.passed(st, cpBegin, i) || l.passed(st, cpEnd, i) {
			continue // may only step inside its own span
		}
		sm := m.(*seqMachine)
		if readStep(sm.pc) {
			if l.ops[i].ReadsBefore > 0 && l.passed(st, cpReadsBefore, i) {
				continue // read phase is over for this op
			}
		} else {
			if l.ops[i].WritesAfter > 0 && !l.passed(st, cpWritesAfter, i) {
				continue // write phase has not opened yet
			}
		}
		h2, ms2 := cloneState(h, ms)
		ms2[i].step(h2)
		if ms2[i].done() && ms2[i].result() != l.ops[i].Result {
			continue // wrong result: this interleaving is not the trace's
		}
		if s, found := l.dfs(h2, ms2, st, append(order, i)); found {
			return s, true
		}
	}
	return Schedule{}, false
}
