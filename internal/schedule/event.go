package schedule

import (
	"fmt"
	"strings"
)

// EventKind enumerates the step vocabulary of the paper's schedules.
type EventKind uint8

const (
	// EvReadNext is a read of a node's next field; Target records the
	// observed successor.
	EvReadNext EventKind = iota
	// EvReadVal is a read of a node's val field; Val records the
	// observed value.
	EvReadVal
	// EvNewNode is the creation of a new node (Node) holding Val with
	// initial successor Target.
	EvNewNode
	// EvWriteNext is a write of Node's next field to Target.
	EvWriteNext
	// EvMark is the logical deletion of Node — a step of the *adjusted*
	// sequential implementation used to analyze Harris-Michael (§2.3).
	EvMark
	// EvReturn is the operation's response; Result records the returned
	// boolean.
	EvReturn
)

// String returns a compact event-kind mnemonic.
func (k EventKind) String() string {
	switch k {
	case EvReadNext:
		return "Rnext"
	case EvReadVal:
		return "Rval"
	case EvNewNode:
		return "new"
	case EvWriteNext:
		return "Wnext"
	case EvMark:
		return "mark"
	case EvReturn:
		return "ret"
	default:
		return fmt.Sprintf("ev(%d)", uint8(k))
	}
}

// Event is one step of a schedule, attributed to a high-level operation.
// Read events record their observed results, which makes schedule
// equality strict: two schedules are the same only if every operation
// observes the same memory.
type Event struct {
	Op     int
	Kind   EventKind
	Node   NodeID
	Val    int64
	Target NodeID
	Result bool
}

// String renders the event.
func (e Event) String() string {
	switch e.Kind {
	case EvReadNext:
		return fmt.Sprintf("op%d:Rnext(X%d)=X%d", e.Op, e.Node, e.Target)
	case EvReadVal:
		return fmt.Sprintf("op%d:Rval(X%d)=%s", e.Op, e.Node, valStr(e.Val))
	case EvNewNode:
		return fmt.Sprintf("op%d:new(X%d=%s,next=X%d)", e.Op, e.Node, valStr(e.Val), e.Target)
	case EvWriteNext:
		return fmt.Sprintf("op%d:Wnext(X%d=X%d)", e.Op, e.Node, e.Target)
	case EvMark:
		return fmt.Sprintf("op%d:mark(X%d)", e.Op, e.Node)
	case EvReturn:
		return fmt.Sprintf("op%d:ret(%v)", e.Op, e.Result)
	default:
		return fmt.Sprintf("op%d:?", e.Op)
	}
}

func valStr(v int64) string {
	switch v {
	case MinVal:
		return "-inf"
	case MaxVal:
		return "+inf"
	default:
		return fmt.Sprintf("%d", v)
	}
}

// OpKind enumerates the high-level set operations.
type OpKind uint8

const (
	// OpInsert is insert(v).
	OpInsert OpKind = iota
	// OpRemove is remove(v).
	OpRemove
	// OpContains is contains(v).
	OpContains
)

// String returns the operation name.
func (k OpKind) String() string {
	switch k {
	case OpInsert:
		return "insert"
	case OpRemove:
		return "remove"
	case OpContains:
		return "contains"
	default:
		return fmt.Sprintf("op(%d)", uint8(k))
	}
}

// OpSpec declares one high-level operation of a schedule.
type OpSpec struct {
	Kind OpKind
	Arg  int64
}

// String renders the op, e.g. "insert(2)".
func (o OpSpec) String() string { return fmt.Sprintf("%s(%d)", o.Kind, o.Arg) }

// Schedule is a complete schedule: an initial list state, the high-level
// operations, and the interleaved sequence of their effective steps.
type Schedule struct {
	// Initial is the initial list contents (strictly ascending).
	Initial []int64
	// Ops declares the operations; event Op fields index into it.
	Ops []OpSpec
	// Adjusted marks a schedule of the adjusted sequential code (remove
	// = logical mark; traversing updates unlink marked nodes), the
	// reference model for Harris-Michael. Standard schedules never
	// contain EvMark events.
	Adjusted bool
	// Events is the interleaved step sequence.
	Events []Event
}

// Key returns a canonical string identifying the schedule; two schedules
// with the same key are the same schedule.
func (s Schedule) Key() string {
	var b strings.Builder
	fmt.Fprintf(&b, "init=%v adj=%v ops=%v |", s.Initial, s.Adjusted, s.Ops)
	for _, e := range s.Events {
		b.WriteString(e.String())
		b.WriteByte(';')
	}
	return b.String()
}

// String renders the schedule multi-line for diagnostics.
func (s Schedule) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "initial %v, ops:", s.Initial)
	for i, o := range s.Ops {
		fmt.Fprintf(&b, " op%d=%s", i, o)
	}
	if s.Adjusted {
		b.WriteString(" (adjusted LL)")
	}
	b.WriteByte('\n')
	for _, e := range s.Events {
		fmt.Fprintf(&b, "  %s\n", e)
	}
	return b.String()
}

// Results extracts each op's returned result from its EvReturn event;
// the boolean reports whether every op has exactly one return.
func (s Schedule) Results() ([]bool, bool) {
	res := make([]bool, len(s.Ops))
	count := make([]int, len(s.Ops))
	for _, e := range s.Events {
		if e.Kind == EvReturn {
			if e.Op < 0 || e.Op >= len(s.Ops) {
				return nil, false
			}
			res[e.Op] = e.Result
			count[e.Op]++
		}
	}
	for _, c := range count {
		if c != 1 {
			return nil, false
		}
	}
	return res, true
}
