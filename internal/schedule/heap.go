// Package schedule is an executable model of Section 2 of the paper:
// concurrency measured as the set of accepted schedules of the
// sequential list code.
//
// A *schedule* is an interleaving of the shared-memory steps (reads,
// writes, node creations — plus logical-deletion marks in the adjusted
// model used for Harris-Michael) that the sequential implementation LL
// of the set type performs. The package provides:
//
//   - an abstract heap of list nodes and the event vocabulary
//     (heap.go, event.go);
//   - step machines for the sequential code, used to *generate*
//     schedules by exploring interleavings (seq.go, generate.go);
//   - the correctness oracle of Definition 1: local serializability
//     w.r.t. LL plus linearizability of every extension σ̄(v)
//     (oracle.go);
//   - step machines for VBL, the Lazy list and the Harris-Michael list,
//     and an acceptance search deciding whether an algorithm has an
//     execution exporting a given schedule (machines.go, accept.go);
//   - the two counterexample schedules of the paper, Figure 2 (rejected
//     by Lazy) and Figure 3 (rejected by Harris-Michael), plus the
//     small-scope exhaustive check that VBL accepts every correct
//     schedule (figures.go, enumerate.go).
package schedule

import (
	"fmt"
	"math"
	"sort"
)

// NodeID identifies an abstract list node. The head is always node 0
// and the tail node 1; initial elements get 2, 3, ... and nodes created
// during a schedule continue the sequence, so a schedule and any
// execution matched against it agree on node identities by
// construction.
type NodeID int

// Head and Tail are the sentinel nodes of every abstract list.
const (
	Head NodeID = 0
	Tail NodeID = 1
	// None is the null node reference.
	None NodeID = -1 << 31
)

// Sentinel values held by head and tail.
const (
	MinVal = math.MinInt64
	MaxVal = math.MaxInt64
)

// nodeState is the abstract state of one node.
type nodeState struct {
	val     int64
	next    NodeID
	deleted bool // logical-deletion mark (adjusted model / VBL metadata)
	lock    int  // owning op id + 1; 0 = free (VBL/Lazy metadata)
}

// Heap is the abstract shared memory: a collection of list nodes.
// It is a value-ish type: Clone produces an independent copy, which the
// acceptance search uses for backtracking.
type Heap struct {
	nodes  map[NodeID]*nodeState
	nextID NodeID // next fresh node id
}

// NewHeap builds a heap holding a sorted list with the given initial
// element values (which must be strictly ascending; duplicates panic).
func NewHeap(initial []int64) *Heap {
	h := &Heap{nodes: make(map[NodeID]*nodeState), nextID: 2}
	h.nodes[Head] = &nodeState{val: MinVal}
	h.nodes[Tail] = &nodeState{val: MaxVal, next: None}
	prev := Head
	for i, v := range initial {
		if i > 0 && initial[i-1] >= v {
			panic(fmt.Sprintf("schedule: initial values not strictly ascending: %v", initial))
		}
		id := h.nextID
		h.nextID++
		h.nodes[id] = &nodeState{val: v, next: None}
		h.nodes[prev].next = id
		prev = id
	}
	h.nodes[prev].next = Tail
	return h
}

// Clone returns a deep copy of the heap.
func (h *Heap) Clone() *Heap {
	c := &Heap{nodes: make(map[NodeID]*nodeState, len(h.nodes)), nextID: h.nextID}
	for id, n := range h.nodes {
		cp := *n
		c.nodes[id] = &cp
	}
	return c
}

// node returns the state of id, panicking on dangling references —
// schedules are closed systems, so a dangling ID is a bug in this
// package, not an input error.
func (h *Heap) node(id NodeID) *nodeState {
	n, ok := h.nodes[id]
	if !ok {
		panic(fmt.Sprintf("schedule: dangling node id %d", id))
	}
	return n
}

// Val returns the value stored at id.
func (h *Heap) Val(id NodeID) int64 { return h.node(id).val }

// Next returns the successor of id.
func (h *Heap) Next(id NodeID) NodeID { return h.node(id).next }

// Deleted reports the logical-deletion mark of id.
func (h *Heap) Deleted(id NodeID) bool { return h.node(id).deleted }

// SetNext writes the successor pointer of id.
func (h *Heap) SetNext(id, target NodeID) { h.node(id).next = target }

// SetDeleted sets the logical-deletion mark of id.
func (h *Heap) SetDeleted(id NodeID) { h.node(id).deleted = true }

// NewNode allocates a fresh exported node.
func (h *Heap) NewNode(val int64, next NodeID) NodeID {
	id := h.nextID
	h.nextID++
	h.nodes[id] = &nodeState{val: val, next: next}
	return id
}

// TryLock acquires id's lock for op if free, reporting success.
func (h *Heap) TryLock(id NodeID, op int) bool {
	n := h.node(id)
	if n.lock != 0 {
		return false
	}
	n.lock = op + 1
	return true
}

// LockedBy returns the op holding id's lock, or -1 if free.
func (h *Heap) LockedBy(id NodeID) int { return h.node(id).lock - 1 }

// Unlock releases id's lock, which must be held by op.
func (h *Heap) Unlock(id NodeID, op int) {
	n := h.node(id)
	if n.lock != op+1 {
		panic(fmt.Sprintf("schedule: op %d unlocking node %d held by %d", op, id, n.lock-1))
	}
	n.lock = 0
}

// Reachable returns the values reachable from head, in list order,
// excluding sentinels. If liveOnly is set, logically deleted nodes are
// skipped (the adjusted model's notion of membership).
func (h *Heap) Reachable(liveOnly bool) []int64 {
	var out []int64
	seen := map[NodeID]bool{}
	for id := h.node(Head).next; id != Tail && id != None; id = h.node(id).next {
		if seen[id] {
			// A cycle can arise in incorrect schedules; membership is
			// whatever was collected up to the repeat.
			break
		}
		seen[id] = true
		n := h.node(id)
		if liveOnly && n.deleted {
			continue
		}
		out = append(out, n.val)
	}
	return out
}

// Members returns Reachable(liveOnly) as a set.
func (h *Heap) Members(liveOnly bool) map[int64]bool {
	m := map[int64]bool{}
	for _, v := range h.Reachable(liveOnly) {
		m[v] = true
	}
	return m
}

// Dump renders the reachable chain for debugging.
func (h *Heap) Dump() string {
	s := "head"
	seen := map[NodeID]bool{}
	for id := h.node(Head).next; id != None; id = h.node(id).next {
		if seen[id] {
			s += " -> CYCLE"
			break
		}
		seen[id] = true
		if id == Tail {
			s += " -> tail"
			break
		}
		n := h.node(id)
		if n.deleted {
			s += fmt.Sprintf(" -> [X%d=%d del]", id, n.val)
		} else {
			s += fmt.Sprintf(" -> [X%d=%d]", id, n.val)
		}
	}
	return s
}

// sortedKeys is a helper for deterministic iteration in tests.
func sortedKeys(m map[int64]bool) []int64 {
	out := make([]int64, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
