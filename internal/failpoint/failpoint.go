// Package failpoint is the repository's fault-injection layer: named
// failpoints at the paper-relevant decision points of every list — the
// validations, CASes and lock acquisitions whose failure is exactly
// what distinguishes the algorithms (Figures 2-3, Theorem 3) — plus
// deterministic seeded actions to provoke those failures on demand.
//
// The paper's adversary is a schedule; this package makes that
// adversary executable. A chaos scenario arms one Site with an Action:
//
//   - ActDelay / ActYield stretch the windows the algorithms race over,
//     so rare interleavings (a remove sleeping between its traversal
//     and its unlink, say) become common;
//   - ActFail forces the decision point itself to report failure —
//     a validation that "fails", a CAS that "loses" — driving the
//     restart and helping paths without needing real contention;
//   - ActPause parks the first goroutine that hits the site until the
//     test releases it, pinning the exact interleavings of the paper's
//     Figure 2 and Figure 3 in deterministic unit tests.
//
// The design mirrors internal/obs: a set algorithm carries a *Set
// pointer (nil = disabled, attached via SetFailpoints / Attach), and
// every site in algorithm code sits behind the On guard:
//
//	if fp := s.fps; failpoint.On(fp) {
//		if fp.Fail(failpoint.SiteVBLLockNextAt, v) {
//			// treat the validation as failed: restart
//		}
//	}
//
// so the disabled cost is one predictable branch. Building with
// -tags nofailpoint turns On into a constant false and the compiler
// deletes the sites outright. The failpointhygiene analyzer
// (internal/analysis) enforces the guard on every site call.
package failpoint

import (
	"fmt"
	"runtime"
	"strconv"
	"strings"
	"sync/atomic"
	"time"
)

// Site names one injection point. The constants enumerate the decision
// points the paper's argument turns on; DESIGN.md §9 maps each to the
// schedule steps of Figures 2-3.
type Site uint8

const (
	// SiteVBLLockNextAt fires just before VBL's identity-validating
	// try-lock of prev (Insert's link, Remove's curr lock). An injected
	// failure takes the same restart path as a genuine failed
	// validation.
	SiteVBLLockNextAt Site = iota
	// SiteVBLLockNextAtValue fires just before VBL's value-validating
	// try-lock of prev in Remove — the lock whose by-value validation
	// is the paper's central novelty.
	SiteVBLLockNextAtValue
	// SiteVBLTraverse fires at the start of each attempt of a VBL
	// update operation, before its wait-free traversal. Side-effect
	// actions only; it is the anchor for pausing an op whose failure
	// path touches no other site (a failed insert returns without
	// locking anything).
	SiteVBLTraverse
	// SiteLazyValidate fires at the Lazy list's post-lock window
	// validation, while both window locks are held. An injected failure
	// releases the window and restarts from head, as the algorithm
	// does for a genuine one.
	SiteLazyValidate
	// SiteHarrisCAS fires just before Harris-Michael's algorithmic
	// CASes (insert link, marker/mark install). An injected failure
	// skips the CAS and takes the restart-from-head path of a lost
	// race.
	SiteHarrisCAS
	// SiteTryLockAcquire fires on the blocking acquisition path of
	// trylock.SpinLock (Lock / LockContended), process-wide via
	// trylock.SetChaos. Side-effect actions only; the reported key is
	// always 0.
	SiteTryLockAcquire
	// SiteShardRoute fires in the sharded façade before an operation
	// is routed to its owning shard. Side-effect actions only.
	SiteShardRoute
	// SiteUnlink fires at physical unlink. In the lock-based lists the
	// unlink happens under locks and cannot fail, so only side-effect
	// actions apply there; in Harris-Michael an injected failure skips
	// the best-effort unlink (delegating it to a future helper) or
	// fails the helping unlink (forcing the Figure 3 restart).
	SiteUnlink
	// SiteEpochAdvance fires in the epoch-based reclamation layer
	// (internal/mem) just before a global epoch advance is attempted.
	// An injected failure skips the attempt — stretching the grace
	// period and starving the free lists, never unsafely shortening it
	// — so chaos runs exercise the arena under reclamation pressure.
	SiteEpochAdvance
	// SiteSkipLockNextAt fires just before the VB skip list's
	// identity/value-validating try-lock at level 0 — the membership
	// level, where the skip list IS the VBL protocol. An injected
	// failure takes the same restart path as a genuine failed
	// validation.
	SiteSkipLockNextAt
	// SiteSkipIndexLink fires just before an index-level link or unlink
	// try-lock (levels >= 1, best-effort maintenance). An injected
	// failure abandons the attempt exactly like a lost try-lock race —
	// membership is unaffected, only search-path quality.
	SiteSkipIndexLink
	// SiteSkipTraverse fires at the start of each attempt of a skip-list
	// update operation, before its wait-free descent. Side-effect
	// actions only; the anchor for pausing an op whose failure path
	// touches no other site.
	SiteSkipTraverse

	// NumSites is the number of distinct sites.
	NumSites
)

// siteNames are the stable identifiers accepted by the -chaos flag and
// echoed into JSON reports. Treat them as a schema: append, never
// rename.
var siteNames = [NumSites]string{
	SiteVBLLockNextAt:      "vbl-lock-next-at",
	SiteVBLLockNextAtValue: "vbl-lock-next-at-value",
	SiteVBLTraverse:        "vbl-traverse",
	SiteLazyValidate:       "lazy-validate",
	SiteHarrisCAS:          "harris-cas",
	SiteTryLockAcquire:     "trylock-acquire",
	SiteShardRoute:         "shard-route",
	SiteUnlink:             "unlink",
	SiteEpochAdvance:       "epoch-advance",
	SiteSkipLockNextAt:     "skip-lock-next-at",
	SiteSkipIndexLink:      "skip-index-link",
	SiteSkipTraverse:       "skip-traverse",
}

// String returns the site's stable identifier.
func (s Site) String() string {
	if s < NumSites {
		return siteNames[s]
	}
	return "site(?)"
}

// ParseSite resolves a stable site name.
func ParseSite(name string) (Site, error) {
	want := strings.ToLower(strings.TrimSpace(name))
	for s, n := range siteNames {
		if n == want {
			return Site(s), nil
		}
	}
	return 0, fmt.Errorf("failpoint: unknown site %q (have: %s)", name, strings.Join(siteNames[:], ", "))
}

// Action is what an armed failpoint does when hit.
type Action uint8

const (
	// ActDelay sleeps for the scenario's Delay.
	ActDelay Action = iota
	// ActYield calls runtime.Gosched, surrendering the core at the
	// decision point.
	ActYield
	// ActFail forces the decision point to report failure. Only sites
	// consulted through Fail can inject it; Do-only sites perform
	// nothing for a fail arm.
	ActFail
	// ActPause parks the first goroutine that hits the site until
	// Pause.Resume — the one-shot scheduling primitive the figure
	// replay tests are built on.
	ActPause

	// NumActions is the number of distinct actions.
	NumActions
)

// actionNames are the stable identifiers accepted by the -chaos flag.
var actionNames = [NumActions]string{
	ActDelay: "delay",
	ActYield: "yield",
	ActFail:  "fail",
	ActPause: "pause",
}

// String returns the action's stable identifier.
func (a Action) String() string {
	if a < NumActions {
		return actionNames[a]
	}
	return "action(?)"
}

// ParseAction resolves a stable action name.
func ParseAction(name string) (Action, error) {
	want := strings.ToLower(strings.TrimSpace(name))
	for a, n := range actionNames {
		if n == want {
			return Action(a), nil
		}
	}
	return 0, fmt.Errorf("failpoint: unknown action %q (have: %s)", name, strings.Join(actionNames[:], ", "))
}

// Scenario is one armed failpoint: a site, an action, and the seeded
// probability gate deciding which hits fire.
type Scenario struct {
	Site   Site
	Action Action
	// Probability is the per-hit chance of firing in (0, 1]; values
	// outside that range are treated as 1 (fire on every hit).
	Probability float64
	// Delay is how long ActDelay sleeps.
	Delay time.Duration
	// Keys, when non-empty, restricts the scenario to hits on these
	// operation keys (boundary keys for seam-fault tests, say).
	Keys []int64
	// Seed makes the probability rolls reproducible: the k-th hit of
	// the site rolls the same number across runs.
	Seed int64
}

// String renders the scenario in the form the -chaos flag accepts:
// site:action[:probability][:delay].
func (sc Scenario) String() string {
	var b strings.Builder
	b.WriteString(sc.Site.String())
	b.WriteByte(':')
	b.WriteString(sc.Action.String())
	if p := sc.effectiveProbability(); p < 1 {
		fmt.Fprintf(&b, ":%g", p)
	}
	if sc.Action == ActDelay {
		fmt.Fprintf(&b, ":%v", sc.Delay)
	}
	return b.String()
}

func (sc Scenario) effectiveProbability() float64 {
	if sc.Probability <= 0 || sc.Probability > 1 {
		return 1
	}
	return sc.Probability
}

// Validate reports whether the scenario is well-formed.
func (sc Scenario) Validate() error {
	if sc.Site >= NumSites {
		return fmt.Errorf("failpoint: scenario site out of range: %d", sc.Site)
	}
	if sc.Action >= NumActions {
		return fmt.Errorf("failpoint: scenario action out of range: %d", sc.Action)
	}
	if sc.Action == ActDelay && sc.Delay <= 0 {
		return fmt.Errorf("failpoint: delay scenario on %s needs a positive Delay", sc.Site)
	}
	return nil
}

// ParseScenario parses one site:action[:probability][:delay] spec, e.g.
// "vbl-lock-next-at:fail:0.1" or "trylock-acquire:delay:0.05:50us".
func ParseScenario(spec string) (Scenario, error) {
	parts := strings.Split(strings.TrimSpace(spec), ":")
	if len(parts) < 2 {
		return Scenario{}, fmt.Errorf("failpoint: scenario %q: want site:action[:probability][:delay]", spec)
	}
	site, err := ParseSite(parts[0])
	if err != nil {
		return Scenario{}, err
	}
	act, err := ParseAction(parts[1])
	if err != nil {
		return Scenario{}, err
	}
	sc := Scenario{Site: site, Action: act, Probability: 1}
	for _, part := range parts[2:] {
		if p, err := strconv.ParseFloat(part, 64); err == nil {
			if p <= 0 || p > 1 {
				return Scenario{}, fmt.Errorf("failpoint: scenario %q: probability %g outside (0, 1]", spec, p)
			}
			sc.Probability = p
			continue
		}
		d, err := time.ParseDuration(part)
		if err != nil {
			return Scenario{}, fmt.Errorf("failpoint: scenario %q: %q is neither a probability nor a duration", spec, part)
		}
		sc.Delay = d
	}
	if err := sc.Validate(); err != nil {
		return Scenario{}, err
	}
	return sc, nil
}

// ParseScenarios parses a comma-separated scenario list. The keyword
// "shipped" expands to the standard scenario suite (see Shipped).
func ParseScenarios(specs string, seed int64) ([]Scenario, error) {
	var out []Scenario
	for _, spec := range strings.Split(specs, ",") {
		spec = strings.TrimSpace(spec)
		if spec == "" {
			continue
		}
		if strings.EqualFold(spec, "shipped") {
			out = append(out, Shipped(seed)...)
			continue
		}
		sc, err := ParseScenario(spec)
		if err != nil {
			return nil, err
		}
		sc.Seed = seed + int64(len(out))
		out = append(out, sc)
	}
	return out, nil
}

// Shipped returns the standard chaos suite: one scenario per site
// family, with probabilities low enough that every operation still
// terminates. The chaos conformance tests run the full registry under
// each of these, and scripts/chaos_smoke.sh runs them in CI.
func Shipped(seed int64) []Scenario {
	us := time.Microsecond
	return []Scenario{
		{Site: SiteVBLLockNextAt, Action: ActFail, Probability: 0.2, Seed: seed},
		{Site: SiteVBLLockNextAtValue, Action: ActFail, Probability: 0.2, Seed: seed + 1},
		{Site: SiteLazyValidate, Action: ActFail, Probability: 0.2, Seed: seed + 2},
		{Site: SiteHarrisCAS, Action: ActFail, Probability: 0.2, Seed: seed + 3},
		{Site: SiteUnlink, Action: ActFail, Probability: 0.2, Seed: seed + 4},
		{Site: SiteVBLTraverse, Action: ActYield, Probability: 0.1, Seed: seed + 5},
		{Site: SiteTryLockAcquire, Action: ActDelay, Probability: 0.02, Delay: 5 * us, Seed: seed + 6},
		{Site: SiteShardRoute, Action: ActDelay, Probability: 0.02, Delay: 5 * us, Seed: seed + 7},
		{Site: SiteEpochAdvance, Action: ActFail, Probability: 0.2, Seed: seed + 8},
		{Site: SiteSkipLockNextAt, Action: ActFail, Probability: 0.2, Seed: seed + 9},
		{Site: SiteSkipIndexLink, Action: ActFail, Probability: 0.2, Seed: seed + 10},
		{Site: SiteSkipTraverse, Action: ActYield, Probability: 0.1, Seed: seed + 11},
	}
}

// arm is one armed site's state. Immutable after Arm except for the
// hit counter and the pause gate.
type arm struct {
	action    Action
	threshold uint64 // probability as a fixed-point fraction of 2^64
	delay     time.Duration
	keys      map[int64]struct{} // nil = every key
	seed      uint64
	hits      atomic.Uint64
	pause     *pauseGate
	scenario  Scenario
}

// Sink receives a copy of every fired failpoint — the hook the flight
// recorder (internal/obs/trace) attaches so captured traces carry the
// exact injection points a chaos run or a figure replay pinned.
// FailpointFired is called from the victim goroutine just before the
// arm's action runs; FailpointReleased is called from the same
// goroutine when it resumes from an ActPause park (the bracket the
// schedule reconstructor turns into ordering constraints). Both must
// be lock-free and allocation-free.
type Sink interface {
	FailpointFired(site Site, action Action, key int64)
	FailpointReleased(site Site, key int64)
}

// Set is a registry of armed failpoints, attached to algorithms the
// way obs.Probes is: a nil *Set means disabled, and every site in
// algorithm code checks the On guard first. The zero value is ready to
// use; arm and disarm are safe under concurrent hits.
type Set struct {
	arms [NumSites]atomic.Pointer[arm]
	// sink, when non-nil, observes fired arms. A plain field: SetSink
	// must happen-before the goroutines that hit sites start, and
	// detaching must happen-after they drain.
	sink Sink
}

// SetSink attaches (or, with nil, detaches) a fired-arm observer. See
// the sink field for the required ordering discipline.
func (s *Set) SetSink(sk Sink) { s.sink = sk }

// NewSet returns an empty failpoint set: every site disarmed.
func NewSet() *Set { return &Set{} }

// Arm installs sc at its site, replacing any previous arm there.
func (s *Set) Arm(sc Scenario) error {
	if err := sc.Validate(); err != nil {
		return err
	}
	a := &arm{
		action:    sc.Action,
		threshold: probThreshold(sc.effectiveProbability()),
		delay:     sc.Delay,
		seed:      uint64(sc.Seed),
		scenario:  sc,
	}
	if len(sc.Keys) > 0 {
		a.keys = make(map[int64]struct{}, len(sc.Keys))
		for _, k := range sc.Keys {
			a.keys[k] = struct{}{}
		}
	}
	if sc.Action == ActPause {
		a.pause = newPauseGate()
	}
	if old := s.arms[sc.Site].Swap(a); old != nil {
		old.release()
	}
	return nil
}

// ArmAll installs every scenario, failing on the first invalid one.
func (s *Set) ArmAll(scs []Scenario) error {
	for _, sc := range scs {
		if err := s.Arm(sc); err != nil {
			return err
		}
	}
	return nil
}

// Disarm removes any arm at site, releasing a goroutine parked at a
// pause arm there.
func (s *Set) Disarm(site Site) {
	if site < NumSites {
		if a := s.arms[site].Swap(nil); a != nil {
			a.release()
		}
	}
}

// DisarmAll removes every arm. The liveness watchdog calls this when
// it fires, so livelocks seeded by probability-1 failures clear, parked
// pause gates release, and the stalled workers can drain.
func (s *Set) DisarmAll() {
	for i := range s.arms {
		if a := s.arms[i].Swap(nil); a != nil {
			a.release()
		}
	}
}

// release spends a removed arm's pause gate (no-op for other actions):
// anything parked there resumes and nothing can park afterwards.
func (a *arm) release() {
	if g := a.pause; g != nil {
		g.claimed.Store(true)
		if g.resumed.CompareAndSwap(false, true) {
			close(g.released)
		}
	}
}

// Armed returns the currently armed scenarios in site order.
func (s *Set) Armed() []Scenario {
	var out []Scenario
	for i := range s.arms {
		if a := s.arms[i].Load(); a != nil {
			out = append(out, a.scenario)
		}
	}
	return out
}

// probThreshold converts a probability in (0, 1] to the fixed-point
// threshold a 64-bit roll is compared against.
func probThreshold(p float64) uint64 {
	if p >= 1 {
		return ^uint64(0)
	}
	return uint64(p * float64(1<<63) * 2)
}

// splitmix64 is the statelessly seedable generator behind the
// probability gate: roll k of an arm is splitmix64(seed+k), so a
// scenario's firing pattern is a pure function of (seed, hit index).
func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// hit resolves whether an armed scenario fires for this (site, key)
// encounter, applying the key filter and the seeded probability gate.
func (s *Set) hit(site Site, key int64) *arm {
	a := s.arms[site].Load()
	if a == nil {
		return nil
	}
	if a.keys != nil {
		if _, ok := a.keys[key]; !ok {
			return nil
		}
	}
	if a.threshold != ^uint64(0) && splitmix64(a.seed+a.hits.Add(1)) > a.threshold {
		return nil
	}
	return a
}

// Do performs the side-effect actions (delay, yield, pause) armed at
// site, if the scenario fires for key. A fail arm does nothing here:
// failure is only injectable at decision points that consult Fail.
// Call sites must guard with On.
func (s *Set) Do(site Site, key int64) {
	if a := s.hit(site, key); a != nil {
		if sk := s.sink; sk != nil {
			sk.FailpointFired(site, a.action, key)
		}
		a.perform(s.sink, site, key)
	}
}

// Fail performs like Do and additionally reports whether the decision
// point must treat itself as failed (an ActFail arm that fired). Call
// sites must guard with On.
func (s *Set) Fail(site Site, key int64) bool {
	a := s.hit(site, key)
	if a == nil {
		return false
	}
	if sk := s.sink; sk != nil {
		sk.FailpointFired(site, a.action, key)
	}
	a.perform(s.sink, site, key)
	return a.action == ActFail
}

// perform executes the arm's side effect. A pause that actually parked
// reports its release to the sink from the resuming goroutine, so the
// fired/released pair brackets exactly the steps other operations took
// while this one was parked.
func (a *arm) perform(sk Sink, site Site, key int64) {
	switch a.action {
	case ActDelay:
		time.Sleep(a.delay)
	case ActYield:
		runtime.Gosched()
	case ActPause:
		if a.pause.park() && sk != nil {
			sk.FailpointReleased(site, key)
		}
	}
}

// pauseGate is the one-shot rendezvous behind ActPause: the first
// goroutine through claims the gate, signals reached, and blocks until
// released. Later hits pass through untouched.
type pauseGate struct {
	claimed  atomic.Bool
	resumed  atomic.Bool
	reached  chan struct{}
	released chan struct{}
}

func newPauseGate() *pauseGate {
	return &pauseGate{reached: make(chan struct{}), released: make(chan struct{})}
}

// park blocks the first goroutine through the gate and reports whether
// this call was the one that parked (later hits pass through untouched
// and report false).
func (g *pauseGate) park() bool {
	if !g.claimed.CompareAndSwap(false, true) {
		return false // one-shot: somebody already paused here
	}
	close(g.reached)
	<-g.released
	return true
}

// Pause is the test-side handle to a one-shot pause armed with
// PauseAt: wait for a goroutine to park on Reached, then release it
// with Resume.
type Pause struct {
	set  *Set
	site Site
	gate *pauseGate
}

// PauseAt arms a one-shot pause at site, restricted to the given keys
// (all keys when empty), and returns its handle. It replaces any
// previous arm at the site.
func (s *Set) PauseAt(site Site, keys ...int64) (*Pause, error) {
	sc := Scenario{Site: site, Action: ActPause, Probability: 1, Keys: keys}
	if err := s.Arm(sc); err != nil {
		return nil, err
	}
	return &Pause{set: s, site: site, gate: s.arms[site].Load().pause}, nil
}

// Reached is closed once a goroutine has parked at the site.
func (p *Pause) Reached() <-chan struct{} { return p.gate.reached }

// AwaitReached blocks until a goroutine parks at the site or the
// timeout expires.
func (p *Pause) AwaitReached(timeout time.Duration) error {
	select {
	case <-p.gate.reached:
		return nil
	case <-time.After(timeout):
		return fmt.Errorf("failpoint: no goroutine reached pause at %s within %v", p.site, timeout)
	}
}

// Resume releases the parked goroutine (if any) and disarms the site.
// Safe to call more than once, and safe to call before anything
// parked — the gate stays claimed, so nothing can park afterwards.
func (p *Pause) Resume() {
	p.set.Disarm(p.site)
	p.gate.claimed.Store(true)
	if p.gate.resumed.CompareAndSwap(false, true) {
		close(p.gate.released)
	}
}

// Injectable is implemented by set algorithms that can carry
// failpoints. SetFailpoints(nil) detaches.
type Injectable interface {
	SetFailpoints(*Set)
}

// Attach connects fps to set if the algorithm supports injection and
// reports whether it did.
func Attach(set any, fps *Set) bool {
	if in, ok := set.(Injectable); ok {
		in.SetFailpoints(fps)
		return true
	}
	return false
}
