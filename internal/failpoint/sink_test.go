package failpoint

import (
	"testing"
	"time"
)

type recordingSink struct {
	fired    []Site
	actions  []Action
	released []Site
}

func (r *recordingSink) FailpointFired(site Site, action Action, key int64) {
	r.fired = append(r.fired, site)
	r.actions = append(r.actions, action)
}

func (r *recordingSink) FailpointReleased(site Site, key int64) {
	r.released = append(r.released, site)
}

// TestSinkSeesFires checks an attached sink observes each fire with
// its action, and nothing once detached.
func TestSinkSeesFires(t *testing.T) {
	s := NewSet()
	sink := &recordingSink{}
	s.SetSink(sink)
	if err := s.Arm(Scenario{Site: SiteUnlink, Action: ActFail}); err != nil {
		t.Fatal(err)
	}
	if !s.Fail(SiteUnlink, 3) {
		t.Fatal("armed ActFail did not fire")
	}
	s.SetSink(nil)
	if !s.Fail(SiteUnlink, 4) {
		t.Fatal("armed ActFail did not fire")
	}
	if len(sink.fired) != 1 || sink.fired[0] != SiteUnlink || sink.actions[0] != ActFail {
		t.Fatalf("sink saw %v/%v, want one SiteUnlink/ActFail", sink.fired, sink.actions)
	}
	if len(sink.released) != 0 {
		t.Fatalf("ActFail produced release records: %v", sink.released)
	}
}

// TestSinkSeesPauseRelease checks a pause emits fire at park and
// release at resume, bracketing the parked interval.
func TestSinkSeesPauseRelease(t *testing.T) {
	s := NewSet()
	sink := &recordingSink{}
	s.SetSink(sink)
	pause, err := s.PauseAt(SiteVBLTraverse, 5)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		s.Do(SiteVBLTraverse, 5) // parks
		close(done)
	}()
	if err := pause.AwaitReached(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	if len(sink.fired) != 1 || sink.actions[0] != ActPause {
		t.Fatalf("at park: fires = %v/%v, want one ActPause", sink.fired, sink.actions)
	}
	if len(sink.released) != 0 {
		t.Fatal("release recorded before Resume")
	}
	pause.Resume()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("paused goroutine did not resume")
	}
	if len(sink.released) != 1 || sink.released[0] != SiteVBLTraverse {
		t.Fatalf("releases = %v, want one SiteVBLTraverse", sink.released)
	}
}
