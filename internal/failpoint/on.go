//go:build !nofailpoint

package failpoint

// Compiled reports whether failpoint sites are compiled into this
// binary. Build with -tags nofailpoint for the injection-free build the
// overhead regression compares against.
const Compiled = true

// On is the canonical enabled-guard for failpoint sites: it reports
// whether the failpoint set is attached. It inlines to a nil check —
// or, under -tags nofailpoint, to false, deleting the guarded block at
// compile time. The failpointhygiene analyzer requires every Do/Fail
// call in algorithm code to sit behind this guard.
func On(s *Set) bool { return s != nil }
