//go:build nofailpoint

package failpoint

// Compiled reports whether failpoint sites are compiled into this
// binary.
const Compiled = false

// On is constant false in the injection-free build: every guarded
// failpoint site is dead code and the compiler deletes it.
func On(*Set) bool { return false }
