package failpoint

import (
	"sync"
	"testing"
	"time"
)

func TestSiteAndActionNamesRoundTrip(t *testing.T) {
	for s := Site(0); s < NumSites; s++ {
		got, err := ParseSite(s.String())
		if err != nil {
			t.Fatalf("ParseSite(%q): %v", s.String(), err)
		}
		if got != s {
			t.Fatalf("ParseSite(%q) = %v, want %v", s.String(), got, s)
		}
	}
	for a := Action(0); a < NumActions; a++ {
		got, err := ParseAction(a.String())
		if err != nil {
			t.Fatalf("ParseAction(%q): %v", a.String(), err)
		}
		if got != a {
			t.Fatalf("ParseAction(%q) = %v, want %v", a.String(), got, a)
		}
	}
	if _, err := ParseSite("no-such-site"); err == nil {
		t.Fatal("ParseSite accepted an unknown site")
	}
	if _, err := ParseAction("no-such-action"); err == nil {
		t.Fatal("ParseAction accepted an unknown action")
	}
}

func TestParseScenario(t *testing.T) {
	sc, err := ParseScenario("vbl-lock-next-at:fail:0.25")
	if err != nil {
		t.Fatal(err)
	}
	if sc.Site != SiteVBLLockNextAt || sc.Action != ActFail || sc.Probability != 0.25 {
		t.Fatalf("parsed %+v", sc)
	}
	sc, err = ParseScenario("trylock-acquire:delay:0.5:50us")
	if err != nil {
		t.Fatal(err)
	}
	if sc.Action != ActDelay || sc.Delay != 50*time.Microsecond || sc.Probability != 0.5 {
		t.Fatalf("parsed %+v", sc)
	}
	for _, bad := range []string{
		"vbl-lock-next-at",            // no action
		"nope:fail",                   // unknown site
		"unlink:explode",              // unknown action
		"unlink:fail:2.0",             // probability out of range
		"unlink:delay",                // delay without a duration
		"unlink:fail:banana",          // neither probability nor duration
		"vbl-lock-next-at:fail:0.5:x", // trailing junk
	} {
		if _, err := ParseScenario(bad); err == nil {
			t.Errorf("ParseScenario(%q) accepted", bad)
		}
	}
}

func TestParseScenariosShippedKeyword(t *testing.T) {
	scs, err := ParseScenarios("shipped", 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(scs) != len(Shipped(7)) {
		t.Fatalf("shipped expanded to %d scenarios, want %d", len(scs), len(Shipped(7)))
	}
	for _, sc := range Shipped(7) {
		if err := sc.Validate(); err != nil {
			t.Errorf("shipped scenario %s invalid: %v", sc, err)
		}
	}
	scs, err = ParseScenarios("unlink:fail:0.1, harris-cas:yield", 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(scs) != 2 {
		t.Fatalf("parsed %d scenarios, want 2", len(scs))
	}
}

func TestScenarioStringRoundTrips(t *testing.T) {
	for _, sc := range Shipped(3) {
		parsed, err := ParseScenario(sc.String())
		if err != nil {
			t.Fatalf("ParseScenario(%q): %v", sc.String(), err)
		}
		if parsed.Site != sc.Site || parsed.Action != sc.Action || parsed.Delay != sc.Delay {
			t.Fatalf("round trip of %q lost fields: %+v", sc.String(), parsed)
		}
	}
}

func TestFailFiresDeterministically(t *testing.T) {
	const hits = 10000
	run := func(seed int64) []bool {
		s := NewSet()
		if err := s.Arm(Scenario{Site: SiteUnlink, Action: ActFail, Probability: 0.3, Seed: seed}); err != nil {
			t.Fatal(err)
		}
		out := make([]bool, hits)
		for i := range out {
			out[i] = s.Fail(SiteUnlink, int64(i))
		}
		return out
	}
	a, b := run(42), run(42)
	fired := 0
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("hit %d differs across identically seeded runs", i)
		}
		if a[i] {
			fired++
		}
	}
	// The seeded gate should land near its probability; a 30% arm
	// firing outside [25%, 35%] over 10k hits means the roll is broken.
	if fired < hits/4 || fired > 7*hits/20 {
		t.Fatalf("p=0.3 arm fired %d/%d times", fired, hits)
	}
	c := run(43)
	same := 0
	for i := range a {
		if a[i] == c[i] {
			same++
		}
	}
	if same == hits {
		t.Fatal("different seeds produced identical firing patterns")
	}
}

func TestProbabilityOneAlwaysFires(t *testing.T) {
	s := NewSet()
	if err := s.Arm(Scenario{Site: SiteHarrisCAS, Action: ActFail}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if !s.Fail(SiteHarrisCAS, int64(i)) {
			t.Fatalf("probability-1 fail arm did not fire on hit %d", i)
		}
	}
}

func TestKeyFilter(t *testing.T) {
	s := NewSet()
	err := s.Arm(Scenario{Site: SiteVBLLockNextAt, Action: ActFail, Keys: []int64{8, 16}})
	if err != nil {
		t.Fatal(err)
	}
	if s.Fail(SiteVBLLockNextAt, 7) {
		t.Fatal("fired on a key outside the filter")
	}
	if !s.Fail(SiteVBLLockNextAt, 8) || !s.Fail(SiteVBLLockNextAt, 16) {
		t.Fatal("did not fire on a filtered key")
	}
}

func TestDisarmedSiteNeverFires(t *testing.T) {
	s := NewSet()
	if s.Fail(SiteLazyValidate, 1) {
		t.Fatal("empty set fired")
	}
	if err := s.Arm(Scenario{Site: SiteLazyValidate, Action: ActFail}); err != nil {
		t.Fatal(err)
	}
	s.Disarm(SiteLazyValidate)
	if s.Fail(SiteLazyValidate, 1) {
		t.Fatal("disarmed site fired")
	}
	if err := s.ArmAll(Shipped(1)); err != nil {
		t.Fatal(err)
	}
	if len(s.Armed()) == 0 {
		t.Fatal("ArmAll armed nothing")
	}
	s.DisarmAll()
	if got := s.Armed(); len(got) != 0 {
		t.Fatalf("DisarmAll left %d arms", len(got))
	}
}

func TestDoIgnoresFailArms(t *testing.T) {
	s := NewSet()
	if err := s.Arm(Scenario{Site: SiteShardRoute, Action: ActFail}); err != nil {
		t.Fatal(err)
	}
	// Do on a fail arm must be a no-op (and, in particular, not panic
	// or block); only Fail call sites can inject failure.
	s.Do(SiteShardRoute, 3)
}

func TestPauseOneShot(t *testing.T) {
	s := NewSet()
	p, err := s.PauseAt(SiteVBLTraverse, 5)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		s.Do(SiteVBLTraverse, 4) // filtered key: passes through
		s.Do(SiteVBLTraverse, 5) // parks here
	}()
	if err := p.AwaitReached(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	select {
	case <-done:
		t.Fatal("goroutine passed the pause without parking")
	default:
	}
	p.Resume()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Resume did not release the parked goroutine")
	}
	// One-shot: the site is disarmed after Resume, later hits pass.
	s.Do(SiteVBLTraverse, 5)
	p.Resume() // idempotent
}

func TestPauseOnlyFirstGoroutineParks(t *testing.T) {
	s := NewSet()
	p, err := s.PauseAt(SiteUnlink)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	passed := make(chan int, 3)
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			s.Do(SiteUnlink, int64(id))
			passed <- id
		}(i)
	}
	if err := p.AwaitReached(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	// Exactly one goroutine parks; the other three sail through.
	for i := 0; i < 3; i++ {
		select {
		case <-passed:
		case <-time.After(5 * time.Second):
			t.Fatal("a non-parked goroutine did not pass the one-shot gate")
		}
	}
	p.Resume()
	wg.Wait()
}

func TestResumeBeforeParkIsSafe(t *testing.T) {
	s := NewSet()
	p, err := s.PauseAt(SiteLazyValidate)
	if err != nil {
		t.Fatal(err)
	}
	p.Resume()
	// The gate is spent: nothing can park afterwards.
	done := make(chan struct{})
	go func() { s.Do(SiteLazyValidate, 1); close(done) }()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("hit after early Resume parked forever")
	}
}

func TestConcurrentHitsRace(t *testing.T) {
	s := NewSet()
	if err := s.Arm(Scenario{Site: SiteHarrisCAS, Action: ActFail, Probability: 0.5, Seed: 9}); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(id int64) {
			defer wg.Done()
			for i := int64(0); i < 2000; i++ {
				s.Fail(SiteHarrisCAS, id*2000+i)
				if i%500 == 0 {
					s.Do(SiteHarrisCAS, i)
				}
			}
		}(int64(g))
	}
	// Rearm and disarm concurrently with the hits.
	for i := 0; i < 20; i++ {
		if err := s.Arm(Scenario{Site: SiteHarrisCAS, Action: ActYield, Probability: 0.5}); err != nil {
			t.Fatal(err)
		}
		s.Disarm(SiteHarrisCAS)
		if err := s.Arm(Scenario{Site: SiteHarrisCAS, Action: ActFail, Probability: 0.5, Seed: 9}); err != nil {
			t.Fatal(err)
		}
	}
	wg.Wait()
}

func TestAttach(t *testing.T) {
	s := NewSet()
	var in injectable
	if !Attach(&in, s) {
		t.Fatal("Attach refused an Injectable")
	}
	if in.got != s {
		t.Fatal("Attach did not forward the set")
	}
	if Attach(struct{}{}, s) {
		t.Fatal("Attach accepted a non-Injectable")
	}
}

type injectable struct{ got *Set }

func (i *injectable) SetFailpoints(s *Set) { i.got = s }
