// Command synchrobench is the Go counterpart of the Synchrobench
// micro-benchmark the paper uses for its evaluation: it drives one
// list-based set implementation with a configurable mix of contains,
// insert and remove operations from N goroutines for a fixed duration
// and reports throughput.
//
// Example (the paper's Figure 1 cell at 8 threads):
//
//	synchrobench -impl vbl -threads 8 -update-ratio 20 -range 50 \
//	    -duration 5s -warmup 5s -runs 5
//
// Use -list to see the available implementations.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime/pprof"
	"time"

	"listset"
	"listset/internal/harness"
	"listset/internal/stats"
	"listset/internal/workload"
)

func main() {
	var (
		implName    = flag.String("impl", "vbl", "implementation to benchmark (see -list)")
		threads     = flag.Int("threads", 4, "number of worker goroutines")
		updateRatio = flag.Int("update-ratio", 20, "percent of update operations (x/2% inserts, x/2% removes)")
		keyRange    = flag.Int64("range", 2048, "key range; steady-state set size is about range/2")
		duration    = flag.Duration("duration", 1*time.Second, "measured duration per run")
		warmup      = flag.Duration("warmup", 1*time.Second, "warm-up before each run")
		runs        = flag.Int("runs", 3, "number of (warmup, measure) repetitions")
		seed        = flag.Int64("seed", 42, "base RNG seed")
		list        = flag.Bool("list", false, "list available implementations and exit")
		quiet       = flag.Bool("quiet", false, "print only the mean throughput (ops/sec)")
		cpuprofile  = flag.String("cpuprofile", "", "write a CPU profile of the measured runs to this file")
	)
	flag.Parse()

	if *list {
		for _, im := range listset.Implementations() {
			safe := "concurrent"
			if !im.ThreadSafe {
				safe = "SINGLE-THREADED"
			}
			fmt.Printf("  %-12s %-15s %s\n", im.Name, safe, im.Desc)
		}
		return
	}

	im, err := listset.Lookup(*implName)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if !im.ThreadSafe && *threads > 1 {
		fmt.Fprintf(os.Stderr, "synchrobench: %s is not thread safe; use -threads 1\n", im.Name)
		os.Exit(2)
	}

	cfg := harness.Config{
		Name:     im.Name,
		New:      func() harness.Set { return im.New() },
		Threads:  *threads,
		Workload: workload.Config{UpdatePercent: *updateRatio, Range: *keyRange},
		Duration: *duration,
		Warmup:   *warmup,
		Runs:     *runs,
		Seed:     *seed,
	}
	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		defer pprof.StopCPUProfile()
	}
	res, err := harness.Run(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	if *quiet {
		fmt.Printf("%.0f\n", res.Summary.Mean)
		return
	}
	fmt.Printf("impl          %s\n", im.Name)
	fmt.Printf("threads       %d\n", cfg.Threads)
	fmt.Printf("workload      %s\n", cfg.Workload)
	fmt.Printf("protocol      %v measured after %v warm-up, %d runs\n", cfg.Duration, cfg.Warmup, cfg.Runs)
	fmt.Printf("initial size  %d\n", res.InitialSize)
	fmt.Printf("throughput    %s ops/sec (mean), %s (median), ±%.1f%% rel. stddev\n",
		stats.HumanCount(res.Summary.Mean), stats.HumanCount(res.Summary.Median), 100*res.Summary.RelStdDev())
	c := res.Counts
	fmt.Printf("operations    %d total: %d/%d contains hit/miss, %d/%d insert ok/fail, %d/%d remove ok/fail\n",
		c.Total(), c.ContainsHit, c.ContainsMiss, c.InsertOK, c.InsertFail, c.RemoveOK, c.RemoveFail)
	fmt.Printf("effective     %.2f%% of operations modified the structure\n", 100*c.EffectiveUpdateRatio())
}
