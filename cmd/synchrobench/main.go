// Command synchrobench is the Go counterpart of the Synchrobench
// micro-benchmark the paper uses for its evaluation: it drives one
// list-based set implementation with a configurable mix of contains,
// insert and remove operations from N goroutines for a fixed duration
// and reports throughput.
//
// Example (the paper's Figure 1 cell at 8 threads):
//
//	synchrobench -impl vbl -threads 8 -update-ratio 20 -range 50 \
//	    -duration 5s -warmup 5s -runs 5
//
// Observability:
//
//	-probes        count contention events (restarts, lock contention,
//	               validation failures, CAS failures, unlinks)
//	-sample-every  time every Nth operation into latency histograms
//	-json          emit the full machine-readable report (implies both)
//	-metricsaddr   serve live expvar counters and pprof over HTTP
//	-trace         record the measured intervals into the flight
//	               recorder (internal/obs/trace) and write the capture
//	               here: a .json path gets Chrome trace-event JSON
//	               (load it in Perfetto or chrome://tracing), any other
//	               path the compact binary format (inspect with
//	               cmd/tracecat); implies -probes
//	-trace-depth   per-worker ring depth in records (rounded up to a
//	               power of two); older records are overwritten
//	-stream        emit interval metrics while measuring: every period
//	               one JSON line ("listset/stream/v1") of windowed
//	               event counts, per-stripe totals and latency
//	               percentiles, to stdout (stderr with -json); implies
//	               -probes, defaults -sample-every to 64
//
// Chaos (fault injection; see internal/failpoint):
//
//	-chaos         arm failpoint scenarios, comma-separated
//	               site:action[:probability][:delay] specs or the
//	               keyword "shipped" for the standard suite
//	-retry-budget  bound failed-validation retries: past K restarts an
//	               op escalates (head-restart, then backoff)
//	-watchdog      fail the run with a goroutine dump when any worker
//	               makes no progress for this long
//
// Batched and ranged operations (see DESIGN.md §13):
//
//	-batch N       batched mode: each worker step draws N keys and
//	               applies them through the set's batch surface in one
//	               amortized pass; throughput stays per key, so the
//	               speedup over -batch 1 is the amortization itself
//	-scan P        make P% of operations range scans [lo, lo+width)
//	               (taken out of the contains share; needs a native
//	               scan surface — vbl, lazy, harris, the skip lists and
//	               sharded forms)
//	-scan-width W  key width of each scan (default 100)
//
// Key distribution: -dist uniform (default), -dist zipf -theta T
// (Zipfian with skew T in (0, 1) — key 0 hottest, the low-key windows
// contended), or -dist hotspot (-hot-frac P percent of the traffic in
// the window [-hot-lo, -hot-lo + -hot-width), rest uniform).
//
// Adaptive contention control (see internal/adapt, DESIGN.md §14):
//
//	-adapt           run the obs-driven feedback controller alongside
//	                 the workers: AIMD per-shard backoff ceilings,
//	                 retry-budget tightening under validation-failure
//	                 storms, online shard rebalancing on sustained load
//	                 skew (sharded impls), and overload shedding;
//	                 implies -probes, reports an "adapt" section
//	-adapt-interval  controller tick period (default 50ms)
//	-phases          time-varying workload preset cycling through full
//	                 workload configs: bursts (read-heavy → write-burst
//	                 → delete-churn), seam (hot window parked on the
//	                 key-space midpoint — a shard boundary for every
//	                 power-of-two partition), moving (hot window hops
//	                 across the range each phase)
//	-phase-dur       dwell time per phase (default 150ms)
//
// Sharding: -shards N (or -impl vbl-sharded) routes keys through the
// order-preserving range partitioner of internal/shard, so each of N
// independent lists owns range/N keys and traversals walk O(n/N) nodes.
//
// Memory (see internal/mem):
//
//	-arena         arena-backed node lifetimes: slab allocation,
//	               per-worker free lists, epoch-based recycling
//	               (vbl, lazy and vbskip; composes with -shards)
//	-gcpercent     set GOGC for the process (-1 disables the GC)
//	-memprofile    write a heap profile after the measured runs
//
// The JSON report's "mem" section carries allocs_per_op/bytes_per_op
// over the measured intervals, the headline the arena moves.
//
// Use -list to see the available implementations.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof on DefaultServeMux
	"os"
	"runtime"
	"runtime/debug"
	"runtime/pprof"
	"strings"
	"sync/atomic"
	"time"

	"listset"
	"listset/internal/adapt"
	"listset/internal/failpoint"
	"listset/internal/harness"
	"listset/internal/obs"
	"listset/internal/obs/trace"
	"listset/internal/stats"
	"listset/internal/workload"
)

func main() {
	var (
		implName    = flag.String("impl", "vbl", "implementation to benchmark (see -list)")
		threads     = flag.Int("threads", 4, "number of worker goroutines")
		shards      = flag.Int("shards", 0, "split the key range across N independent lists (0 = unsharded; *-sharded impls default to 16)")
		updateRatio = flag.Int("update-ratio", 20, "percent of update operations (x/2% inserts, x/2% removes)")
		keyRange    = flag.Int64("range", 2048, "key range; steady-state set size is about range/2")
		duration    = flag.Duration("duration", 1*time.Second, "measured duration per run")
		warmup      = flag.Duration("warmup", 1*time.Second, "warm-up before each run")
		runs        = flag.Int("runs", 3, "number of (warmup, measure) repetitions")
		seed        = flag.Int64("seed", 42, "base RNG seed")
		list        = flag.Bool("list", false, "list available implementations and exit")
		quiet       = flag.Bool("quiet", false, "print one self-describing line per run configuration")
		jsonOut     = flag.Bool("json", false, "emit the report as JSON (implies -probes; default -sample-every 64)")
		probesOn    = flag.Bool("probes", false, "count contention events during measured runs")
		sampleEvery = flag.Int("sample-every", -1, "time every Nth op into latency histograms; 0 disables (default: 64 with -json, else 0)")
		metricsAddr = flag.String("metricsaddr", "", "serve expvar metrics and pprof over HTTP at this address (implies -probes)")
		cpuprofile  = flag.String("cpuprofile", "", "write a CPU profile of the measured runs to this file")
		mutexprof   = flag.String("mutexprofile", "", "write a mutex-contention profile to this file")
		blockprof   = flag.String("blockprofile", "", "write a blocking profile to this file")
		arena       = flag.Bool("arena", false, "arena-backed node lifetimes: slab allocation + epoch-based recycling (vbl/lazy only)")
		gcpercent   = flag.Int("gcpercent", 0, "debug.SetGCPercent for the whole process; -1 disables the GC, 0 keeps the default")
		memprofile  = flag.String("memprofile", "", "write a heap profile (after a forced GC) to this file when the runs finish")
		traceFile   = flag.String("trace", "", "record measured intervals and write the capture here (.json = Chrome trace-event format, else compact binary; implies -probes)")
		traceDepth  = flag.Int("trace-depth", trace.DefaultDepth, "flight-recorder ring depth per worker, in records (rounded up to a power of two)")
		streamEvery = flag.Duration("stream", 0, "stream interval metrics as JSON lines every period (0 = off; implies -probes)")
		batchSize   = flag.Int("batch", 0, "batched mode: apply N keys per call through the set's batch surface (0 = per-key mode; 1 = single-key batches)")
		scanPct     = flag.Int("scan", 0, "percent of operations that are range scans (out of the contains share; 0 = none)")
		scanWidth   = flag.Int64("scan-width", 0, "key width of each range scan (0 = default 100)")
		dist        = flag.String("dist", "uniform", "key distribution: uniform, zipf or hotspot")
		theta       = flag.Float64("theta", 0.99, "zipfian skew in (0, 1); used with -dist zipf")
		hotFrac     = flag.Int("hot-frac", workload.DefaultHotPercent, "percent of traffic in the hot window; used with -dist hotspot")
		hotLo       = flag.Int64("hot-lo", 0, "hot window's lower key bound; used with -dist hotspot")
		hotWidth    = flag.Int64("hot-width", 0, "hot window's key width (0 = range/128); used with -dist hotspot")
		adaptOn     = flag.Bool("adapt", false, "run the adaptive contention controller (implies -probes; rebalancing on sharded impls)")
		adaptEvery  = flag.Duration("adapt-interval", 0, "controller tick period (0 = default 50ms)")
		phasePreset = flag.String("phases", "", "time-varying workload preset: "+strings.Join(workload.PresetNames(), ", "))
		phaseDur    = flag.Duration("phase-dur", 0, "dwell per phase (0 = default 150ms)")
		chaosSpec   = flag.String("chaos", "", "failpoint scenarios: comma-separated site:action[:prob][:delay], or \"shipped\"")
		retryBudget = flag.Int("retry-budget", 0, "failed-validation retry budget K before escalation (0 = unbounded)")
		watchdog    = flag.Duration("watchdog", 0, "liveness deadline: fail the run if a worker stalls this long (0 = off)")
	)
	flag.Parse()

	if *list {
		for _, im := range listset.Implementations() {
			safe := "concurrent"
			if !im.ThreadSafe {
				safe = "SINGLE-THREADED"
			}
			fmt.Printf("  %-12s %-15s %s\n", im.Name, safe, im.Desc)
		}
		return
	}

	im, err := listset.Lookup(*implName)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if !im.ThreadSafe && *threads > 1 {
		fmt.Fprintf(os.Stderr, "synchrobench: %s is not thread safe; use -threads 1\n", im.Name)
		os.Exit(2)
	}

	// Shard resolution: an explicit -shards N wins; the *-sharded
	// registry entries default to DefaultShards when the flag is absent,
	// so `-impl vbl-sharded` alone gets a partition fitted to -range
	// rather than the constructors' generic focus range.
	nShards := *shards
	if nShards < 0 {
		fmt.Fprintf(os.Stderr, "synchrobench: -shards %d must be non-negative\n", nShards)
		os.Exit(2)
	}
	if nShards == 0 && strings.HasSuffix(im.Name, "-sharded") {
		nShards = listset.DefaultShards
	}
	if nShards > 0 && im.NewSharded == nil {
		fmt.Fprintf(os.Stderr, "synchrobench: %s has no sharded form; drop -shards or pick vbl, lazy, harris or a skip list\n", im.Name)
		os.Exit(2)
	}

	// Flag resolution: -json wants the full report, so it switches the
	// probes on and defaults sampling to a light 1-in-64; -metricsaddr
	// is pointless without counters to serve.
	if *sampleEvery < 0 {
		if *jsonOut || *streamEvery > 0 {
			*sampleEvery = 64
		} else {
			*sampleEvery = 0
		}
	}
	if *jsonOut || *metricsAddr != "" || *traceFile != "" || *streamEvery > 0 || *adaptOn {
		*probesOn = true
	}

	// Arena resolution: -arena and the *-arena registry entries mean the
	// same thing; either way the report carries arena=true.
	useArena := *arena || im.NewArena != nil && strings.HasSuffix(im.Name, "-arena")
	if useArena && im.NewArena == nil {
		fmt.Fprintf(os.Stderr, "synchrobench: %s has no arena form (node reuse is an ABA hazard for the lock-free lists); drop -arena or pick vbl, lazy or vbskip\n", im.Name)
		os.Exit(2)
	}
	if useArena && nShards > 0 && im.NewShardedArena == nil {
		fmt.Fprintf(os.Stderr, "synchrobench: %s has no sharded arena form; drop -arena or -shards\n", im.Name)
		os.Exit(2)
	}
	if *gcpercent != 0 {
		debug.SetGCPercent(*gcpercent)
	}

	newSet := func() harness.Set { return im.New() }
	switch {
	case nShards > 0 && useArena:
		n, hi := nShards, *keyRange
		newSet = func() harness.Set { return im.NewShardedArena(n, 0, hi) }
	case nShards > 0:
		// The partition splits exactly the workload's key range, so
		// every shard owns range/S keys and traversals shrink O(n/S).
		n, hi := nShards, *keyRange
		newSet = func() harness.Set { return im.NewSharded(n, 0, hi) }
	case useArena:
		newSet = func() harness.Set { return im.NewArena() }
	}
	wl := workload.Config{
		UpdatePercent: *updateRatio,
		Range:         *keyRange,
		ScanPercent:   *scanPct,
		ScanWidth:     *scanWidth,
	}
	switch *dist {
	case "", workload.DistUniform:
	case workload.DistZipf:
		wl.Dist, wl.Theta = *dist, *theta
	case workload.DistHotspot:
		wl.Dist = *dist
		wl.HotPercent, wl.HotLo, wl.HotWidth = *hotFrac, *hotLo, *hotWidth
	default:
		wl.Dist = *dist // workload.Validate rejects it with the full list
	}
	if *scanPct > 0 && !im.Scan {
		fmt.Fprintf(os.Stderr, "synchrobench: %s has no native range scan; drop -scan or pick vbl, lazy, harris, a skip list or a sharded form\n", im.Name)
		os.Exit(2)
	}
	if *batchSize > 1 && !im.Batch {
		fmt.Fprintf(os.Stderr, "synchrobench: note: %s has no native batch surface; -batch %d runs the per-key fallback\n", im.Name, *batchSize)
	}
	cfg := harness.Config{
		Name:               im.Name,
		New:                newSet,
		Shards:             nShards,
		Arena:              useArena,
		Threads:            *threads,
		Workload:           wl,
		BatchSize:          *batchSize,
		Duration:           *duration,
		Warmup:             *warmup,
		Runs:               *runs,
		Seed:               *seed,
		LatencySampleEvery: *sampleEvery,
		RetryBudget:        *retryBudget,
		Watchdog:           *watchdog,
	}
	if *adaptOn {
		// Rebalancing needs the routing stripes only sharded façades
		// have; the controller discovers the rest of the actuator
		// surface itself.
		cfg.Adapt = &adapt.Config{
			Interval:  *adaptEvery,
			Rebalance: nShards > 0,
		}
	}
	if *phasePreset != "" {
		sched, err := workload.Preset(*phasePreset, wl, *phaseDur)
		if err != nil {
			fmt.Fprintln(os.Stderr, "synchrobench:", err)
			os.Exit(2)
		}
		cfg.Phases = sched
	}
	if *chaosSpec != "" {
		scs, err := failpoint.ParseScenarios(*chaosSpec, *seed)
		if err != nil {
			fmt.Fprintln(os.Stderr, "synchrobench:", err)
			os.Exit(2)
		}
		cfg.Chaos = scs
		if !failpoint.Compiled {
			fmt.Fprintln(os.Stderr, "synchrobench: warning: built with -tags nofailpoint; -chaos scenarios will never fire")
		}
	}
	if *probesOn {
		cfg.Probes = obs.NewProbes()
		if !obs.Compiled {
			fmt.Fprintln(os.Stderr, "synchrobench: warning: built with -tags obsoff; probe counts will be zero")
		}
	}
	if *traceFile != "" {
		cfg.Trace = trace.NewTracer(*threads, *traceDepth)
	}
	if *streamEvery > 0 {
		cfg.Stream = *streamEvery
		// With -json the report owns stdout, so the stream rides stderr.
		streamOut := os.Stdout
		if *jsonOut {
			streamOut = os.Stderr
		}
		enc := json.NewEncoder(streamOut)
		var lastRow atomic.Value
		cfg.StreamSink = func(row trace.StreamRow) {
			lastRow.Store(row)
			enc.Encode(row) //nolint:errcheck // best-effort live stream
		}
		if *metricsAddr != "" {
			obs.PublishFunc("listset.stream", func() any {
				return lastRow.Load()
			})
		}
	}
	if *metricsAddr != "" {
		obs.Publish("listset.events", cfg.Probes)
		go func() {
			// DefaultServeMux already carries /debug/vars (expvar) and
			// /debug/pprof (net/http/pprof).
			if err := http.ListenAndServe(*metricsAddr, nil); err != nil {
				fmt.Fprintf(os.Stderr, "synchrobench: metrics server: %v\n", err)
			}
		}()
	}
	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		defer pprof.StopCPUProfile()
	}
	if *mutexprof != "" {
		runtime.SetMutexProfileFraction(1)
		defer writeProfile("mutex", *mutexprof)
	}
	if *blockprof != "" {
		runtime.SetBlockProfileRate(1)
		defer writeProfile("block", *blockprof)
	}
	res, err := harness.Run(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if cfg.Trace != nil {
		if err := writeTrace(cfg.Trace, *traceFile); err != nil {
			fmt.Fprintln(os.Stderr, "synchrobench:", err)
			os.Exit(2)
		}
	}
	if *memprofile != "" {
		// A forced GC first, so the profile shows live retention (slab
		// arenas held vs. garbage awaiting collection), not float.
		runtime.GC()
		writeProfile("heap", *memprofile)
	}

	switch {
	case *jsonOut:
		if err := harness.WriteJSON(os.Stdout, res); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
	case *quiet:
		// One self-describing line so sweeps driven by shell loops stay
		// greppable: impl, threads, workload, mean ops/sec.
		fmt.Printf("%s %d %s %.0f\n", im.Name, cfg.Threads, cfg.Workload, res.Summary.Mean)
	default:
		printHuman(im.Name, cfg, res)
	}
}

// printHuman renders the default human-readable report.
func printHuman(name string, cfg harness.Config, res harness.Result) {
	fmt.Printf("impl          %s\n", name)
	fmt.Printf("threads       %d\n", cfg.Threads)
	if cfg.Shards > 0 {
		fmt.Printf("shards        %d (range partitioned over [0, %d))\n", cfg.Shards, cfg.Workload.Range)
	}
	if cfg.Arena {
		fmt.Printf("arena         slab-backed nodes, epoch-based recycling\n")
	}
	fmt.Printf("workload      %s\n", cfg.Workload)
	if cfg.Phases != nil {
		fmt.Printf("phases        %s\n", cfg.Phases)
	}
	if cfg.BatchSize > 0 {
		fmt.Printf("batch         %d keys per call (throughput counted per key)\n", cfg.BatchSize)
	}
	fmt.Printf("protocol      %v measured after %v warm-up, %d runs\n", cfg.Duration, cfg.Warmup, cfg.Runs)
	if len(cfg.Chaos) > 0 {
		specs := make([]string, len(cfg.Chaos))
		for i, sc := range cfg.Chaos {
			specs[i] = sc.String()
		}
		fmt.Printf("chaos         %s\n", strings.Join(specs, ", "))
	}
	if cfg.RetryBudget > 0 || cfg.Watchdog > 0 {
		fmt.Printf("robustness    retry budget %d, watchdog %v\n", cfg.RetryBudget, cfg.Watchdog)
	}
	fmt.Printf("initial size  %d\n", res.InitialSize)
	fmt.Printf("throughput    %s ops/sec (mean), %s (median), ±%.1f%% rel. stddev\n",
		stats.HumanCount(res.Summary.Mean), stats.HumanCount(res.Summary.Median), 100*res.Summary.RelStdDev())
	c := res.Counts
	fmt.Printf("operations    %d total: %d/%d contains hit/miss, %d/%d insert ok/fail, %d/%d remove ok/fail\n",
		c.Total(), c.ContainsHit, c.ContainsMiss, c.InsertOK, c.InsertFail, c.RemoveOK, c.RemoveFail)
	if c.Scans > 0 {
		fmt.Printf("scans         %d completed, %.1f keys returned per scan\n",
			c.Scans, float64(c.ScanKeys)/float64(c.Scans))
	}
	fmt.Printf("effective     %.2f%% of operations modified the structure\n", 100*c.EffectiveUpdateRatio())
	fmt.Printf("memory        %.2f allocs/op, %.1f B/op (process-wide, measured intervals)\n",
		res.AllocsPerOp(), res.BytesPerOp())
	if cfg.Probes != nil {
		fmt.Printf("events        ")
		first := true
		for ev := obs.Event(0); ev < obs.NumEvents; ev++ {
			if !first {
				fmt.Printf(", ")
			}
			fmt.Printf("%s=%d", ev, res.Events[ev])
			first = false
		}
		fmt.Println()
	}
	if res.HasRetry && res.Retry.Ops > 0 {
		r := res.Retry
		fmt.Printf("retry         %d ops retried: %d restarts, %d escalated to head, %d backed off, worst op %d restarts\n",
			r.Ops, r.Restarts, r.EscalatedHead, r.EscalatedBackoff, r.MaxRestarts)
	}
	if a := res.Adapt; a != nil {
		fmt.Printf("adapt         %d ticks: %d/%d backoff widen/decay, %d/%d budget tighten/relax, %d rebalances (%d keys), %d/%d shed/unshed\n",
			a.Ticks, a.BackoffWiden, a.BackoffDecay, a.BudgetTighten, a.BudgetRelax,
			a.Rebalances, a.KeysMigrated, a.Sheds, a.Unsheds)
		fmt.Printf("              final budget %d, ceilings %v\n", a.FinalBudget, a.FinalCeilings)
	}
	if res.Latency != nil {
		for op := obs.OpKind(0); op < obs.NumOps; op++ {
			p := res.Latency.Percentiles(op)
			if p.Count == 0 {
				continue
			}
			fmt.Printf("latency       %-8s n=%-8d p50=%s p90=%s p99=%s p999=%s\n",
				op, p.Count,
				time.Duration(p.P50), time.Duration(p.P90),
				time.Duration(p.P99), time.Duration(p.P999))
		}
	}
}

// writeTrace exports the tracer's capture: Chrome trace-event JSON for
// .json paths (Perfetto-loadable), the compact binary format otherwise.
func writeTrace(tr *trace.Tracer, path string) error {
	capture := tr.Snapshot()
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if strings.HasSuffix(path, ".json") {
		err = capture.WriteChrome(f)
	} else {
		err = capture.WriteBinary(f)
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return fmt.Errorf("trace export: %w", err)
	}
	fmt.Fprintf(os.Stderr, "synchrobench: trace: %d records captured (%d overwritten) -> %s\n",
		len(capture.Records), capture.Drops, path)
	return nil
}

// writeProfile dumps the named runtime profile (mutex, block) to path.
func writeProfile(name, path string) {
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return
	}
	defer f.Close()
	if err := pprof.Lookup(name).WriteTo(f, 0); err != nil {
		fmt.Fprintf(os.Stderr, "synchrobench: %s profile: %v\n", name, err)
	}
}
