package main

import (
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
)

// TestDisabledFailpointOverhead is the acceptance gate on the chaos
// layer's zero-cost claim: with no failpoint set attached (the
// default), a binary carrying the injection sites must not be
// meaningfully slower than a site-free build (-tags nofailpoint turns
// failpoint.On into a constant false, deleting the sites at compile
// time). Each guard is a nil-check branch on a field already in cache,
// exactly the obs.On discipline — so any real gap means a site leaked
// onto a hot path unguarded, which the failpointhygiene analyzer
// should have caught first.
//
// The threshold is deliberately loose (25%) for the same reason as
// TestDisabledProbeOverhead: CI machines are noisy and this
// interleaves best-of-N runs of two subprocess binaries. The
// documented ≤2% figure comes from the quiet-machine protocol in
// DESIGN.md §9; this test only catches order-of-magnitude regressions.
func TestDisabledFailpointOverhead(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and times subprocess binaries; skipped with -short")
	}
	dir := t.TempDir()
	normal := filepath.Join(dir, "synchrobench")
	siteFree := filepath.Join(dir, "synchrobench-nofailpoint")
	build := func(out string, tags ...string) {
		args := []string{"build", "-o", out}
		args = append(args, tags...)
		args = append(args, ".")
		cmd := exec.Command("go", args...)
		cmd.Env = os.Environ()
		if b, err := cmd.CombinedOutput(); err != nil {
			t.Fatalf("go %s: %v\n%s", strings.Join(args, " "), err, b)
		}
	}
	build(normal)
	build(siteFree, "-tags", "nofailpoint")

	measure := func(bin string) float64 {
		cmd := exec.Command(bin,
			"-impl", "vbl", "-threads", "8", "-update-ratio", "20",
			"-range", "2048", "-duration", "300ms", "-warmup", "100ms",
			"-runs", "1", "-quiet")
		out, err := cmd.Output()
		if err != nil {
			t.Fatalf("%s: %v", bin, err)
		}
		fields := strings.Fields(strings.TrimSpace(string(out)))
		tput, err := strconv.ParseFloat(fields[len(fields)-1], 64)
		if err != nil {
			t.Fatalf("parsing throughput from %q: %v", out, err)
		}
		return tput
	}

	// Interleave the binaries and keep each one's best run, so a
	// background hiccup hits both sides rather than biasing one.
	var bestNormal, bestFree float64
	for i := 0; i < 3; i++ {
		if v := measure(normal); v > bestNormal {
			bestNormal = v
		}
		if v := measure(siteFree); v > bestFree {
			bestFree = v
		}
	}
	t.Logf("detached failpoints: %.0f ops/s; site-free build: %.0f ops/s; ratio %.3f",
		bestNormal, bestFree, bestNormal/bestFree)
	if bestNormal < 0.75*bestFree {
		t.Errorf("detached-failpoint build at %.0f ops/s is more than 25%% below the site-free build's %.0f ops/s; a site likely leaked past its On-guard",
			bestNormal, bestFree)
	}
}
