// Command vblvet runs this repository's concurrency-invariant static
// analyzers (internal/analysis) over a set of Go packages and reports
// findings as clickable file:line:col diagnostics.
//
// Usage:
//
//	go run ./cmd/vblvet [-tests=false] [-a locksafe,copylock] [packages...]
//
// With no package arguments it analyzes ./... . Exit status is 0 when
// no findings survive suppression, 1 when there are findings, and 2
// when loading or type-checking fails. See DESIGN.md ("Checked
// invariants") for what each analyzer enforces and how to suppress a
// justified false positive with //lint:ignore.
//
// Machine-readable output and ratcheting:
//
//	vblvet -json ./...                      findings as a JSON array
//	vblvet -write-baseline FILE ./...       snapshot current findings
//	vblvet -baseline FILE ./...             fail only on NEW findings
//
// A baseline entry is keyed by analyzer, repo-relative file path, and
// message — deliberately not by line number, so unrelated edits that
// shift a known finding do not break CI while any new finding (or a
// changed message) does. The checked-in baseline is
// scripts/vblvet_baseline.json; keeping it empty is the goal state,
// and the stale-suppression check keeps the //lint:ignore inventory
// honest in the same spirit.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"listset/internal/analysis"
)

// jsonDiag is the -json / baseline wire form of one finding.
type jsonDiag struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Message  string `json:"message"`
}

// baselineKey identifies a finding across unrelated line churn.
func (d jsonDiag) baselineKey() string {
	return d.Analyzer + "|" + d.File + "|" + d.Message
}

// toJSON converts a diagnostic, relativizing the path to cwd so the
// baseline is machine-independent.
func toJSON(d analysis.Diagnostic, cwd string) jsonDiag {
	file := d.Pos.Filename
	if cwd != "" {
		if rel, err := filepath.Rel(cwd, file); err == nil && !strings.HasPrefix(rel, "..") {
			file = filepath.ToSlash(rel)
		}
	}
	return jsonDiag{
		Analyzer: d.Analyzer,
		File:     file,
		Line:     d.Pos.Line,
		Col:      d.Pos.Column,
		Message:  d.Message,
	}
}

func main() {
	tests := flag.Bool("tests", true, "also analyze _test.go files")
	only := flag.String("a", "", "comma-separated analyzer subset (default: all)")
	list := flag.Bool("list", false, "list analyzers and exit")
	asJSON := flag.Bool("json", false, "print findings as a JSON array")
	baseline := flag.String("baseline", "", "baseline file: fail only on findings not in it")
	writeBaseline := flag.String("write-baseline", "", "write current findings to this baseline file and exit 0")
	timing := flag.Bool("timing", false, "print per-analyzer wall-clock timings to stderr")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: vblvet [flags] [packages]\n\n")
		fmt.Fprintf(flag.CommandLine.Output(), "Runs the listset concurrency-invariant analyzers. Flags:\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	analyzers := analysis.Analyzers()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-14s %s\n", a.Name, a.Doc)
		}
		return
	}
	if *only != "" {
		byName := make(map[string]*analysis.Analyzer)
		for _, a := range analyzers {
			byName[a.Name] = a
		}
		var picked []*analysis.Analyzer
		for _, name := range strings.Split(*only, ",") {
			a, ok := byName[name]
			if !ok {
				fmt.Fprintf(os.Stderr, "vblvet: unknown analyzer %q (use -list)\n", name)
				os.Exit(2)
			}
			picked = append(picked, a)
		}
		analyzers = picked
	}

	pkgs, err := analysis.Load(flag.Args(), analysis.LoadOptions{Tests: *tests})
	if err != nil {
		fmt.Fprintf(os.Stderr, "vblvet: %v\n", err)
		os.Exit(2)
	}
	diags, timings := analysis.RunTimed(pkgs, analyzers)
	if *timing {
		for _, t := range timings {
			fmt.Fprintf(os.Stderr, "vblvet: %-14s %8.1fms\n", t.Name, float64(t.Elapsed.Microseconds())/1000)
		}
	}

	cwd, _ := os.Getwd()
	out := make([]jsonDiag, 0, len(diags))
	for _, d := range diags {
		out = append(out, toJSON(d, cwd))
	}

	if *writeBaseline != "" {
		data, err := json.MarshalIndent(out, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "vblvet: %v\n", err)
			os.Exit(2)
		}
		if err := os.WriteFile(*writeBaseline, append(data, '\n'), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "vblvet: %v\n", err)
			os.Exit(2)
		}
		fmt.Fprintf(os.Stderr, "vblvet: wrote %d finding(s) to %s\n", len(out), *writeBaseline)
		return
	}

	if *baseline != "" {
		known, err := loadBaseline(*baseline)
		if err != nil {
			fmt.Fprintf(os.Stderr, "vblvet: %v\n", err)
			os.Exit(2)
		}
		var fresh []jsonDiag
		for _, d := range out {
			if !known[d.baselineKey()] {
				fresh = append(fresh, d)
			}
		}
		suppressed := len(out) - len(fresh)
		out = fresh
		if suppressed > 0 {
			fmt.Fprintf(os.Stderr, "vblvet: %d baseline finding(s) suppressed\n", suppressed)
		}
	}

	if *asJSON {
		data, err := json.MarshalIndent(out, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "vblvet: %v\n", err)
			os.Exit(2)
		}
		fmt.Println(string(data))
	} else {
		for _, d := range out {
			fmt.Printf("%s:%d:%d: %s: %s\n", d.File, d.Line, d.Col, d.Analyzer, d.Message)
		}
	}
	if len(out) > 0 {
		fmt.Fprintf(os.Stderr, "vblvet: %d finding(s)\n", len(out))
		os.Exit(1)
	}
}

// loadBaseline reads a baseline file into its key set.
func loadBaseline(path string) (map[string]bool, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var entries []jsonDiag
	if err := json.Unmarshal(data, &entries); err != nil {
		return nil, fmt.Errorf("parsing baseline %s: %v", path, err)
	}
	known := make(map[string]bool, len(entries))
	for _, e := range entries {
		known[e.baselineKey()] = true
	}
	return known, nil
}
