// Command vblvet runs this repository's concurrency-invariant static
// analyzers (internal/analysis) over a set of Go packages and reports
// findings as clickable file:line:col diagnostics.
//
// Usage:
//
//	go run ./cmd/vblvet [-tests=false] [-a locksafe,copylock] [packages...]
//
// With no package arguments it analyzes ./... . Exit status is 0 when
// no findings survive suppression, 1 when there are findings, and 2
// when loading or type-checking fails. See DESIGN.md ("Checked
// invariants") for what each analyzer enforces and how to suppress a
// justified false positive with //lint:ignore.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"listset/internal/analysis"
)

func main() {
	tests := flag.Bool("tests", true, "also analyze _test.go files")
	only := flag.String("a", "", "comma-separated analyzer subset (default: all)")
	list := flag.Bool("list", false, "list analyzers and exit")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: vblvet [flags] [packages]\n\n")
		fmt.Fprintf(flag.CommandLine.Output(), "Runs the listset concurrency-invariant analyzers. Flags:\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	analyzers := analysis.Analyzers()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-14s %s\n", a.Name, a.Doc)
		}
		return
	}
	if *only != "" {
		byName := make(map[string]*analysis.Analyzer)
		for _, a := range analyzers {
			byName[a.Name] = a
		}
		var picked []*analysis.Analyzer
		for _, name := range strings.Split(*only, ",") {
			a, ok := byName[name]
			if !ok {
				fmt.Fprintf(os.Stderr, "vblvet: unknown analyzer %q (use -list)\n", name)
				os.Exit(2)
			}
			picked = append(picked, a)
		}
		analyzers = picked
	}

	pkgs, err := analysis.Load(flag.Args(), analysis.LoadOptions{Tests: *tests})
	if err != nil {
		fmt.Fprintf(os.Stderr, "vblvet: %v\n", err)
		os.Exit(2)
	}
	diags := analysis.Run(pkgs, analyzers)
	for _, d := range diags {
		fmt.Println(d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "vblvet: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}
