package main

import (
	"fmt"
	"os"
	"path/filepath"

	"listset"
	"listset/internal/lincheck"
	"listset/internal/obs/trace"
	"listset/internal/schedule"
)

// figureReplay drives the deterministic Figure 2/3 failpoint replays
// under the flight recorder and machine-checks the round trip: capture
// → operation history → linearizability, and capture → checkpointed
// spans → schedule.Lift → the paper's accepted schedule. For Figure 2
// it additionally certifies the separation the figure exists to show:
// the lifted schedule is VBL-accepted and Lazy-rejected. When traceDir
// is non-empty, each replay's capture is written there in the compact
// binary format (figure2.trace, figure3.trace) for cmd/tracecat.
func figureReplay(traceDir string) error {
	replays := []struct {
		name string
		run  func(*trace.Tracer) ([]int64, error)
		// lazyRejected asserts the lifted schedule separates VBL from
		// Lazy (Figure 2's claim; Figure 3's separation is from Harris,
		// whose adjusted model Lift would have to target separately).
		lazyRejected bool
	}{
		{"figure2", listset.ReplayFigure2, true},
		{"figure3", listset.ReplayFigure3, false},
	}
	for _, rp := range replays {
		tr := trace.NewTracer(2, 1<<12)
		initial, err := rp.run(tr)
		if err != nil {
			return fmt.Errorf("%s: %w", rp.name, err)
		}
		c := tr.Snapshot()
		if c.Drops != 0 {
			return fmt.Errorf("%s: capture dropped %d records", rp.name, c.Drops)
		}

		h, err := c.History()
		if err != nil {
			return fmt.Errorf("%s: %w", rp.name, err)
		}
		init := make(map[int64]bool, len(initial))
		for _, k := range initial {
			init[k] = true
		}
		if v := lincheck.Check(h, init); v != nil {
			return fmt.Errorf("%s: reconstructed history not linearizable: %v", rp.name, v)
		}

		ops, err := c.ScheduleOps()
		if err != nil {
			return fmt.Errorf("%s: %w", rp.name, err)
		}
		s, err := schedule.Lift(schedule.AlgVBL, initial, ops)
		if err != nil {
			return fmt.Errorf("%s: %w", rp.name, err)
		}
		if rp.lazyRejected && schedule.Accepts(schedule.AlgLazy, s) {
			return fmt.Errorf("%s: lifted schedule should separate VBL from Lazy but Lazy accepts it", rp.name)
		}
		sep := ""
		if rp.lazyRejected {
			sep = ", Lazy-rejected"
		}
		fmt.Printf("%s: %d records -> %d ops linearizable -> VBL-accepted schedule (%d events%s)\n",
			rp.name, len(c.Records), len(h.Ops), len(s.Events), sep)

		if traceDir != "" {
			if err := os.MkdirAll(traceDir, 0o755); err != nil {
				return err
			}
			path := filepath.Join(traceDir, rp.name+".trace")
			f, err := os.Create(path)
			if err != nil {
				return err
			}
			err = c.WriteBinary(f)
			if cerr := f.Close(); err == nil {
				err = cerr
			}
			if err != nil {
				return fmt.Errorf("%s: writing %s: %w", rp.name, path, err)
			}
			fmt.Printf("%s: capture -> %s\n", rp.name, path)
		}
	}
	return nil
}
