package main

import (
	"testing"

	"listset/internal/workload"
)

func TestParseThreadsDefault(t *testing.T) {
	got, err := parseThreads("")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) == 0 || got[0] != 1 {
		t.Fatalf("default thread list %v", got)
	}
	for i := 1; i < len(got); i++ {
		if got[i] != got[i-1]*2 {
			t.Fatalf("default thread list not powers of two: %v", got)
		}
	}
}

func TestParseThreadsExplicit(t *testing.T) {
	got, err := parseThreads("1, 3,7")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[0] != 1 || got[1] != 3 || got[2] != 7 {
		t.Fatalf("parsed %v", got)
	}
}

func TestParseThreadsRejectsGarbage(t *testing.T) {
	for _, in := range []string{"x", "0", "-2", "1,,2", "1,2,three"} {
		if _, err := parseThreads(in); err == nil {
			t.Errorf("parseThreads(%q) accepted", in)
		}
	}
}

func TestCandidatesResolve(t *testing.T) {
	cands := candidates("vbl", "lazy")
	if len(cands) != 2 || cands[0].Name != "vbl" || cands[1].Name != "lazy" {
		t.Fatalf("candidates = %+v", cands)
	}
	// Factories must build fresh sets.
	s := cands[0].New()
	if !s.Insert(1) || !s.Contains(1) {
		t.Fatal("candidate factory produced a broken set")
	}
}

func TestCandidatesPanicOnUnknown(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("unknown candidate name did not panic")
		}
	}()
	candidates("no-such-impl")
}

func TestProtocolZeroValueUsable(t *testing.T) {
	// The workload configs used by the figure drivers must validate.
	for _, update := range []int{0, 20, 100} {
		for _, r := range []int64{50, 200, 2000, 20000} {
			cfg := workload.Config{UpdatePercent: update, Range: r}
			if err := cfg.Validate(); err != nil {
				t.Fatalf("figure workload %v invalid: %v", cfg, err)
			}
		}
	}
}
