// Command figures regenerates the evaluation exhibits of "Optimal
// Concurrency for List-Based Sets" (PACT 2021):
//
//	-fig 1        Figure 1  — Lazy vs VBL, 20% updates, 25-node list
//	-fig 4        Figure 4  — 3 update ratios × 4 key ranges, all lists
//	-fig rtti     §4 ablation — Harris AMR vs RTTI-style marker variant
//	-fig sharded  beyond the paper — VBL behind the order-preserving
//	              range partitioner, shard counts from -shards
//	-fig batch    beyond the paper — batch amortization sweep: the
//	              one-pass multi-window batch surface at batch sizes
//	              1/8/64/512 (plus the plain per-key baseline) on a
//	              short and a long list
//	-fig chaos    robustness — injected restart-trigger failures at
//	              increasing probability, bounded-retry ladder armed
//	-fig adapt    robustness — static vs adaptive contention control on
//	              the sharded VBL under skewed (Zipf θ=0.99), seam and
//	              moving-hotspot load; the adaptive column runs the
//	              internal/adapt feedback loops (per-shard AIMD
//	              backoff, retry-budget tuning, online rebalancing)
//	-fig replay   audit — Figure 2/3 failpoint replays captured by the
//	              flight recorder, lifted back to the paper's accepted
//	              schedules and linearizability-checked (-traceout DIR
//	              keeps the binary captures)
//	-fig all      everything (except replay, which is not a benchmark)
//
// Default durations are scaled down so the full grid finishes in
// minutes; pass -paper for the paper's protocol (5 s runs × 5 after a
// 5 s warm-up). Absolute numbers depend on the machine; the shapes —
// who wins, where Lazy collapses, what the Harris indirection costs —
// are the reproduction target (see EXPERIMENTS.md).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"listset"
	"listset/internal/adapt"
	"listset/internal/failpoint"
	"listset/internal/harness"
	"listset/internal/workload"
)

func main() {
	var (
		fig      = flag.String("fig", "all", "which figure to regenerate: 1, 4, rtti, all")
		paper    = flag.Bool("paper", false, "use the paper's full protocol (5s x5 after 5s warm-up)")
		duration = flag.Duration("duration", 300*time.Millisecond, "measured duration per run")
		warmup   = flag.Duration("warmup", 150*time.Millisecond, "warm-up before each run")
		runs     = flag.Int("runs", 3, "repetitions per cell")
		threads  = flag.String("threads", "", "comma-separated thread counts (default: powers of two up to 2x cores)")
		shards   = flag.String("shards", "1,4,16,64", "comma-separated shard counts for -fig sharded")
		seed     = flag.Int64("seed", 42, "base RNG seed")
		csv      = flag.Bool("csv", false, "emit CSV instead of tables")
		jsonOut  = flag.Bool("json", false, "emit one JSON array of per-cell reports (with contention events)")
		quiet    = flag.Bool("quiet", false, "print one self-describing line per cell instead of tables")
		traceDir = flag.String("traceout", "", "with -fig replay: also write each replay's binary capture into this directory")
	)
	flag.Parse()

	if *paper {
		*duration = 5 * time.Second
		*warmup = 5 * time.Second
		*runs = 5
	}
	threadList, err := parseThreads(*threads)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	shardList, err := parseCounts("shard count", *shards)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	proto := protocol{duration: *duration, warmup: *warmup, runs: *runs, seed: *seed, threads: threadList, csv: *csv, quiet: *quiet}
	if *jsonOut {
		proto.reports = new([]harness.JSONReport)
	}
	switch *fig {
	case "1":
		figure1(proto)
	case "4":
		figure4(proto)
	case "rtti":
		figureRTTI(proto)
	case "survey":
		figureSurvey(proto)
	case "skiplist":
		figureSkipList(proto)
	case "index":
		figureIndex(proto)
	case "sharded":
		figureSharded(proto, shardList)
	case "batch":
		figureBatch(proto)
	case "chaos":
		figureChaos(proto)
	case "adapt":
		figureAdapt(proto)
	case "replay":
		if err := figureReplay(*traceDir); err != nil {
			fmt.Fprintln(os.Stderr, "figures: replay:", err)
			os.Exit(1)
		}
	case "all":
		figure1(proto)
		figure4(proto)
		figureRTTI(proto)
		figureSurvey(proto)
		figureSkipList(proto)
		figureIndex(proto)
		figureSharded(proto, shardList)
		figureBatch(proto)
		figureChaos(proto)
		figureAdapt(proto)
	default:
		fmt.Fprintf(os.Stderr, "figures: unknown -fig %q (have: 1, 4, rtti, survey, skiplist, index, sharded, batch, chaos, adapt, replay, all)\n", *fig)
		os.Exit(2)
	}
	if proto.reports != nil {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(*proto.reports); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
}

type protocol struct {
	duration time.Duration
	warmup   time.Duration
	runs     int
	seed     int64
	threads  []int
	csv      bool
	quiet    bool
	// chaos, retryBudget and watchdog forward to every cell of the
	// sweeps this protocol drives; figureChaos varies them per sweep.
	chaos       []failpoint.Scenario
	retryBudget int
	watchdog    time.Duration
	// batchSize forwards to every cell (0 = per-key mode); figureBatch
	// varies it per sweep.
	batchSize int
	// phases forwards a time-varying schedule to every cell;
	// figureAdapt sets it for the seam and moving panels.
	phases *workload.Schedule
	// reports, when non-nil, collects every cell's JSON report instead
	// of printing tables; main flushes the array once at exit so stdout
	// stays a single valid JSON document.
	reports *[]harness.JSONReport
}

// header prints a section banner unless a machine-readable mode owns
// stdout.
func (p protocol) header(s string) {
	if p.reports == nil && !p.quiet {
		fmt.Println(s)
	}
}

func parseThreads(s string) ([]int, error) {
	if s == "" {
		var out []int
		max := 2 * runtime.NumCPU()
		for t := 1; t <= max; t *= 2 {
			out = append(out, t)
		}
		return out, nil
	}
	return parseCounts("thread count", s)
}

// parseCounts parses a comma-separated list of positive integers.
func parseCounts(what, s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("figures: bad %s %q", what, part)
		}
		out = append(out, n)
	}
	return out, nil
}

func candidates(names ...string) []harness.Candidate {
	var out []harness.Candidate
	for _, name := range names {
		im, err := listset.Lookup(name)
		if err != nil {
			panic(err)
		}
		out = append(out, harness.Candidate{Name: im.Name, New: func() harness.Set { return im.New() }})
	}
	return out
}

func runAndReport(p protocol, title string, cands []harness.Candidate, wl workload.Config, reference string) {
	sweep := harness.Sweep{
		Title:      title,
		Candidates: cands,
		Threads:    p.threads,
		Workload:   wl,
		Duration:   p.duration,
		Warmup:     p.warmup,
		Runs:       p.runs,
		Seed:       p.seed,
		// JSON reports carry the events section, so give those sweeps
		// per-cell probes.
		Observe:     p.reports != nil,
		Chaos:       p.chaos,
		RetryBudget: p.retryBudget,
		Watchdog:    p.watchdog,
		BatchSize:   p.batchSize,
		Phases:      p.phases,
	}
	res, err := harness.RunSweep(sweep)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	switch {
	case p.reports != nil:
		*p.reports = append(*p.reports, res.JSONReports()...)
	case p.quiet:
		for _, row := range res.Results {
			for _, cell := range row {
				fmt.Printf("%s %s %d %s %.0f\n",
					title, cell.Config.Name, cell.Config.Threads, cell.Config.Workload, cell.Summary.Mean)
			}
		}
	case p.csv:
		res.WriteCSV(os.Stdout)
	default:
		res.WriteTable(os.Stdout)
		if reference != "" {
			res.WriteSpeedups(os.Stdout, reference)
		}
		fmt.Println()
	}
}

// figure1 reproduces Figure 1: a ~25-node list (key range 50) under 20%
// updates; the paper shows Lazy collapsing past ~40 threads while VBL
// keeps scaling, reaching ~1.6x at 72 threads.
func figure1(p protocol) {
	p.header("=== Figure 1: Lazy vs VBL, 20% updates, key range 50 (~25 nodes) ===")
	runAndReport(p, "figure-1", candidates("vbl", "lazy"),
		workload.Config{UpdatePercent: 20, Range: 50}, "vbl")
}

// figure4 reproduces the Figure 4 grid: update ratios {0, 20, 100} ×
// key ranges {50, 200, 2000, 20000} for VBL, Lazy and both
// Harris-Michael variants.
func figure4(p protocol) {
	p.header("=== Figure 4: throughput grid, Intel protocol ===")
	cands := candidates("vbl", "lazy", "harris", "harris-amr")
	for _, update := range []int{0, 20, 100} {
		for _, keyRange := range []int64{50, 200, 2000, 20000} {
			title := fmt.Sprintf("figure-4 panel u=%d%% r=%d", update, keyRange)
			runAndReport(p, title, cands,
				workload.Config{UpdatePercent: update, Range: keyRange}, "vbl")
		}
	}
}

// figureSurvey goes beyond the paper's trio: every registered
// thread-safe implementation — including the §5 related-work
// algorithms (Fomitchev-Ruppert, Optimistic) and the ablation variants
// — on the paper's standard 20%-update workload.
func figureSurvey(p protocol) {
	p.header("=== Survey: all implementations, 20% updates, key range 200 ===")
	var names []string
	for _, im := range listset.Implementations() {
		if im.ThreadSafe {
			names = append(names, im.Name)
		}
	}
	runAndReport(p, "survey", candidates(names...),
		workload.Config{UpdatePercent: 20, Range: 200}, "vbl")
}

// figureSkipList evaluates the §5 conjecture: the value-aware skip
// list against the LazySkipList baseline on a range where the index
// dominates, with the flat VBL for scale.
func figureSkipList(p protocol) {
	p.header("=== §5 conjecture: value-aware skip list vs LazySkipList ===")
	for _, keyRange := range []int64{20000, 200000} {
		names := []string{"vbskip", "lazyskip"}
		if keyRange <= 20000 {
			names = append(names, "vbl")
		}
		title := fmt.Sprintf("skiplist r=%d", keyRange)
		runAndReport(p, title, candidates(names...),
			workload.Config{UpdatePercent: 20, Range: keyRange}, "vbskip")
	}
}

// figureIndex is the ROADMAP's large-range milestone check: past range
// ~2·10⁴ every flat list is traversal-bound — even sharded VBL only
// divides O(n) by S — while the skip indexes stay log-time. The
// figure lines up the strongest lists (flat and sharded VBL, Lazy,
// Harris) against vbskip, vbskip-arena, and their sharded forms at the
// same shard count; scripts/bench_index.sh turns the expected ordering
// into a committed gate.
func figureIndex(p protocol) {
	p.header("=== Log-time at large ranges: skip indexes vs every list ===")
	for _, keyRange := range []int64{20000, 200000} {
		cands := candidates("vbl", "lazy", "harris", "vbskip", "vbskip-arena")
		cands = append(cands,
			shardedCandidate("vbl", listset.DefaultShards, keyRange),
			shardedCandidate("vbskip", listset.DefaultShards, keyRange),
			shardedCandidate("vbskip-arena", listset.DefaultShards, keyRange),
		)
		title := fmt.Sprintf("index r=%d", keyRange)
		runAndReport(p, title, cands,
			workload.Config{UpdatePercent: 20, Range: keyRange}, "vbskip")
	}
}

// figureSharded prices the order-preserving range partitioner on a
// long list (key range 16384, 20% updates): the flat VBL, Lazy and
// Harris lists set the scale, then VBL runs behind the sharded façade
// at each requested shard count. With traversals dominating at this
// range, throughput should track O(n/S) until the partition outgrows
// the set.
func figureSharded(p protocol, shardCounts []int) {
	p.header("=== Sharded VBL: order-preserving range partitioner, 20% updates, key range 16384 ===")
	wl := workload.Config{UpdatePercent: 20, Range: 16384}
	cands := candidates("vbl", "lazy", "harris")
	for _, s := range shardCounts {
		cands = append(cands, shardedCandidate("vbl", s, wl.Range))
	}
	runAndReport(p, "sharded r=16384", cands, wl, "vbl")
}

// shardedCandidate enters the named implementation's sharded form,
// partitioned over [0, keyRange), as e.g. "vbl-s16".
func shardedCandidate(name string, shards int, keyRange int64) harness.Candidate {
	im, err := listset.Lookup(name)
	if err != nil {
		panic(err)
	}
	if im.NewSharded == nil {
		panic(fmt.Sprintf("figures: %s has no sharded form", im.Name))
	}
	return harness.Candidate{
		Name:   fmt.Sprintf("%s-s%d", im.Name, shards),
		New:    func() harness.Set { return im.NewSharded(shards, 0, keyRange) },
		Shards: shards,
	}
}

// figureBatch prices the amortized one-pass batch surface (DESIGN.md
// §13): the three native lists at batch sizes 1/8/64/512, with the
// plain per-key loop (batch 0) setting the scale, on a short list
// (range 200, where a pass saves little) and a long one (range 20000,
// where one sorted pass replaces k full traversals). Per-key
// accounting means any ratio over the batch-0 row is amortization, not
// bookkeeping. Update ratio 100: batches of contains are ordinary
// traversals; inserts and removes are where the window protocol earns.
func figureBatch(p protocol) {
	p.header("=== Batch amortization: one-pass multi-window batches, 100% updates ===")
	cands := candidates("vbl", "lazy", "harris")
	for _, keyRange := range []int64{200, 20000} {
		wl := workload.Config{UpdatePercent: 100, Range: keyRange}
		for _, bs := range []int{0, 1, 8, 64, 512} {
			p.batchSize = bs
			title := fmt.Sprintf("batch k=%d r=%d", bs, keyRange)
			runAndReport(p, title, cands, wl, "vbl")
		}
	}
}

// figureChaos prices fault tolerance: the three paper algorithms under
// injected failures of their own restart triggers — VBL's lockNextAt
// validation, Lazy's validate, Harris's CAS — at increasing
// probability, with the bounded-retry ladder armed (budget 4). Each
// implementation only ever executes its own site, so one scenario list
// covers all three columns; the p=0 row (no arms) sets the scale and
// the degradation shape below it shows how each restart discipline
// absorbs faults. The watchdog guards the sweep against a scenario
// that tips a cell into livelock.
func figureChaos(p protocol) {
	p.header("=== Chaos: injected restart-trigger failure, 20% updates, key range 200 ===")
	wl := workload.Config{UpdatePercent: 20, Range: 200}
	cands := candidates("vbl", "lazy", "harris")
	p.retryBudget = 4
	p.watchdog = 30 * time.Second
	for _, prob := range []float64{0, 0.01, 0.1, 0.5} {
		p.chaos = nil
		if prob > 0 {
			for _, site := range []failpoint.Site{
				failpoint.SiteVBLLockNextAt,
				failpoint.SiteLazyValidate,
				failpoint.SiteHarrisCAS,
			} {
				p.chaos = append(p.chaos, failpoint.Scenario{
					Site: site, Action: failpoint.ActFail,
					Probability: prob, Seed: p.seed,
				})
			}
		}
		title := fmt.Sprintf("chaos p=%g", prob)
		runAndReport(p, title, cands, wl, "vbl")
	}
}

// figureAdapt prices adaptive contention control (internal/adapt,
// DESIGN.md §14): the sharded VBL with a static configuration against
// the same façade with the feedback controller armed, on the three
// load shapes a static partition handles worst — Zipf θ=0.99 (all
// heat on shard 0), the seam attack (hot window parked on the
// key-space midpoint boundary), and the moving hotspot (rebalanced
// partitions invalidated a phase later). The uniform panel bounds the
// controller's overhead when there is nothing to adapt to.
func figureAdapt(p protocol) {
	p.header("=== Adaptive contention control: static vs adaptive sharded VBL, 50% updates, key range 20000 ===")
	const nShards, keyRange = 16, int64(20000)
	p.retryBudget = 32
	base := workload.Config{UpdatePercent: 50, Range: keyRange}
	static := shardedCandidate("vbl", nShards, keyRange)
	static.Name = "vbl-s16-static"
	adaptive := shardedCandidate("vbl", nShards, keyRange)
	adaptive.Name = "vbl-s16-adapt"
	adaptive.Adapt = &adapt.Config{Rebalance: true}
	cands := []harness.Candidate{static, adaptive}

	uniform := base
	runAndReport(p, "adapt uniform", cands, uniform, "vbl-s16-static")

	zipf := base
	zipf.Dist, zipf.Theta = workload.DistZipf, 0.99
	runAndReport(p, "adapt zipf0.99", cands, zipf, "vbl-s16-static")

	for _, preset := range []string{"seam", "moving"} {
		sched, err := workload.Preset(preset, base, 0)
		if err != nil {
			panic(err)
		}
		p.phases = sched
		runAndReport(p, "adapt "+preset, cands, base, "vbl-s16-static")
		p.phases = nil
	}
}

// figureRTTI isolates the §4 observation that the AMR variant's extra
// indirection costs traversal-heavy workloads dearly, which the
// RTTI/marker variant repairs.
func figureRTTI(p protocol) {
	p.header("=== RTTI ablation: Harris-Michael AMR vs marker, read-only ===")
	cands := candidates("harris", "harris-amr")
	for _, keyRange := range []int64{200, 20000} {
		title := fmt.Sprintf("rtti ablation r=%d", keyRange)
		runAndReport(p, title, cands,
			workload.Config{UpdatePercent: 0, Range: keyRange}, "harris")
	}
}
