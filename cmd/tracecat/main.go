// Command tracecat inspects compact binary flight-recorder captures
// (the -trace output of cmd/synchrobench and the harness; see
// internal/obs/trace). By default it prints a summary; with -dump it
// lists every record.
//
//	tracecat run.trace                  summary: workers, depth, drops,
//	                                    record counts by kind
//	tracecat -dump run.trace            one line per record
//	tracecat -chrome out.json run.trace convert to Chrome trace-event
//	                                    JSON (Perfetto-loadable)
//	tracecat -lincheck run.trace        reconstruct the op history and
//	                                    check per-key linearizability
//	                                    against -initial (comma-
//	                                    separated keys present at start)
//
// The linearizability audit refuses captures with ring drops: a trace
// that lost records cannot certify a run, only illustrate it.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"listset/internal/lincheck"
	"listset/internal/obs/trace"
)

func main() {
	var (
		dump    = flag.Bool("dump", false, "print every record")
		chrome  = flag.String("chrome", "", "convert the capture to Chrome trace-event JSON at this path")
		lin     = flag.Bool("lincheck", false, "reconstruct the operation history and check per-key linearizability")
		initial = flag.String("initial", "", "comma-separated keys present in the set at capture start (for -lincheck)")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: tracecat [flags] <capture file>")
		flag.PrintDefaults()
		os.Exit(2)
	}
	f, err := os.Open(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	capture, err := trace.ReadBinary(f)
	f.Close()
	if err != nil {
		fatal(err)
	}

	fmt.Printf("capture       %s\n", flag.Arg(0))
	fmt.Printf("workers       %d (ring depth %d)\n", capture.Workers, capture.Depth)
	fmt.Printf("records       %d captured, %d overwritten\n", len(capture.Records), capture.Drops)
	counts := capture.CountByKind()
	for k := trace.Kind(1); k < trace.NumKinds; k++ {
		if counts[k] > 0 {
			fmt.Printf("  %-18s %d\n", k, counts[k])
		}
	}

	if *dump {
		for _, r := range capture.Records {
			fmt.Println(r)
		}
	}
	if *chrome != "" {
		out, err := os.Create(*chrome)
		if err != nil {
			fatal(err)
		}
		err = capture.WriteChrome(out)
		if cerr := out.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			fatal(err)
		}
		fmt.Printf("chrome        wrote %s\n", *chrome)
	}
	if *lin {
		h, err := capture.History()
		if err != nil {
			fatal(err)
		}
		init := make(map[int64]bool)
		if *initial != "" {
			for _, s := range strings.Split(*initial, ",") {
				k, err := strconv.ParseInt(strings.TrimSpace(s), 10, 64)
				if err != nil {
					fatal(fmt.Errorf("bad -initial key %q: %w", s, err))
				}
				init[k] = true
			}
		}
		if v := lincheck.Check(h, init); v != nil {
			fmt.Fprintf(os.Stderr, "tracecat: NOT linearizable: %v\n", v)
			os.Exit(1)
		}
		fmt.Printf("lincheck      %d ops linearizable (initial set: %d keys)\n", len(h.Ops), len(init))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tracecat:", err)
	os.Exit(2)
}
