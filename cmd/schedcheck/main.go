// Command schedcheck exercises the paper's concurrency framework
// (Section 2) — schedules of the sequential list code, the correctness
// oracle of Definition 1, and per-algorithm acceptance:
//
//	-fig 2       replay Figure 2 (correct; VBL accepts, Lazy rejects)
//	-fig remove  the failed-remove sibling of Figure 2
//	-fig 3       replay Figure 3 (correct; Harris-Michael rejects)
//	-fig all     all of the above (default)
//	-enumerate   exhaustive small-scope optimality check (Theorem 3):
//	             every schedule of every pair of operations, oracle-
//	             filtered, acceptance-tested for VBL, Lazy and Harris
//	-scope       quick|full enumeration scope (full takes CPU-minutes)
package main

import (
	"flag"
	"fmt"
	"os"

	"listset/internal/schedule"
)

func main() {
	var (
		fig       = flag.String("fig", "all", "figure to replay: 2, remove, value, 3, all, none")
		enumerate = flag.Bool("enumerate", false, "run the exhaustive small-scope optimality check")
		scopeName = flag.String("scope", "quick", "enumeration scope: quick or full")
		progress  = flag.Bool("progress", false, "run the exhaustive deadlock/livelock-freedom check")
		verbose   = flag.Bool("v", false, "print the schedules in full")
	)
	flag.Parse()

	ok := true
	switch *fig {
	case "2":
		ok = figure2(*verbose) && ok
	case "remove":
		ok = failedRemove(*verbose) && ok
	case "3":
		ok = figure3(*verbose) && ok
	case "value":
		ok = reincarnation(*verbose) && ok
	case "all":
		ok = figure2(*verbose) && ok
		ok = failedRemove(*verbose) && ok
		ok = reincarnation(*verbose) && ok
		ok = figure3(*verbose) && ok
	case "none":
	default:
		fmt.Fprintf(os.Stderr, "schedcheck: unknown -fig %q\n", *fig)
		os.Exit(2)
	}

	if *enumerate {
		var sc schedule.Scope
		switch *scopeName {
		case "quick":
			sc = schedule.QuickScope()
		case "full":
			sc = schedule.DefaultScope()
		default:
			fmt.Fprintf(os.Stderr, "schedcheck: unknown -scope %q\n", *scopeName)
			os.Exit(2)
		}
		ok = runEnumeration(sc) && ok
	}

	if *progress {
		ok = runProgress() && ok
	}

	if !ok {
		os.Exit(1)
	}
}

// runProgress explores every interleaving of contention-heavy operation
// mixes and reports reachable deadlocks (all algorithms) and scheduler
// livelocks (lock-based algorithms) — the executable counterpart of the
// paper's deadlock-freedom discussion.
func runProgress() bool {
	fmt.Println("Exhaustive progress check (deadlock/livelock freedom):")
	mixes := []struct {
		initial []int64
		ops     []schedule.OpSpec
	}{
		{[]int64{1}, []schedule.OpSpec{{Kind: schedule.OpInsert, Arg: 2}, {Kind: schedule.OpInsert, Arg: 2}}},
		{[]int64{1}, []schedule.OpSpec{{Kind: schedule.OpRemove, Arg: 1}, {Kind: schedule.OpRemove, Arg: 1}}},
		{[]int64{1, 2}, []schedule.OpSpec{{Kind: schedule.OpInsert, Arg: 3}, {Kind: schedule.OpRemove, Arg: 2}}},
		{nil, []schedule.OpSpec{{Kind: schedule.OpInsert, Arg: 1}, {Kind: schedule.OpInsert, Arg: 1}, {Kind: schedule.OpRemove, Arg: 1}}},
	}
	ok := true
	algs := []struct {
		alg      schedule.Algorithm
		livelock bool
	}{
		{schedule.AlgVBL, true},
		{schedule.AlgLazy, true},
		{schedule.AlgHarris, true},
		{schedule.AlgCoarse, true},
		{schedule.AlgHOH, true},
		{schedule.AlgOptimistic, true},
	}
	for _, a := range algs {
		states := 0
		verdictStr := "deadlock-free, livelock-free"
		for _, mix := range mixes {
			rep := schedule.CheckProgress(a.alg, mix.initial, mix.ops, a.livelock)
			states += rep.States
			if rep.Deadlock != "" {
				verdictStr = "DEADLOCK: " + rep.Deadlock
				ok = false
				break
			}
			if rep.Livelock != "" {
				verdictStr = "LIVELOCK: " + rep.Livelock
				ok = false
				break
			}
		}
		fmt.Printf("  %-16s %8d states  %s\n", a.alg.String(), states, verdictStr)
	}
	return ok
}

func verdict(label string, want, got bool) bool {
	status := "ok"
	if want != got {
		status = "UNEXPECTED"
	}
	fmt.Printf("  %-55s %-6v %s\n", label, got, status)
	return want == got
}

func figure2(verbose bool) bool {
	fmt.Println("Figure 2: insert(2) ∥ insert(1) on {1}; insert(1) returns false")
	fmt.Println("          between insert(2)'s node creation and its link write.")
	s := schedule.Figure2()
	if verbose {
		fmt.Print(s)
	}
	correct, reason := schedule.Correct(s)
	ok := verdict("oracle: schedule is correct", true, correct)
	if !correct {
		fmt.Printf("    reason: %s\n", reason)
	}
	ok = verdict("VBL accepts", true, schedule.Accepts(schedule.AlgVBL, s)) && ok
	ok = verdict("Lazy accepts (paper: it must NOT)", false, schedule.Accepts(schedule.AlgLazy, s)) && ok
	fmt.Println()
	return ok
}

func failedRemove(verbose bool) bool {
	fmt.Println("Failed-remove sibling of Figure 2: insert(2) ∥ remove(2) on {1};")
	fmt.Println("          remove(2) returns false inside insert(2)'s lock window.")
	s := schedule.FailedRemoveSchedule()
	if verbose {
		fmt.Print(s)
	}
	correct, reason := schedule.Correct(s)
	ok := verdict("oracle: schedule is correct", true, correct)
	if !correct {
		fmt.Printf("    reason: %s\n", reason)
	}
	ok = verdict("VBL accepts", true, schedule.Accepts(schedule.AlgVBL, s)) && ok
	ok = verdict("Lazy accepts (paper: it must NOT)", false, schedule.Accepts(schedule.AlgLazy, s)) && ok
	fmt.Println()
	return ok
}

func reincarnation(verbose bool) bool {
	fmt.Println("Value-awareness witness: remove(5) sleeps between its reads and")
	fmt.Println("          its write while 5 is removed and re-inserted as a NEW node.")
	s := schedule.ReincarnationSchedule()
	if verbose {
		fmt.Print(s)
	}
	correct, reason := schedule.Correct(s)
	ok := verdict("oracle: schedule is correct", true, correct)
	if !correct {
		fmt.Printf("    reason: %s\n", reason)
	}
	ok = verdict("VBL accepts (validates successor BY VALUE)", true, schedule.Accepts(schedule.AlgVBL, s)) && ok
	ok = verdict("Lazy accepts (paper: it must NOT)", false, schedule.Accepts(schedule.AlgLazy, s)) && ok
	fmt.Println()
	return ok
}

func figure3(verbose bool) bool {
	fmt.Println("Figure 3 (adjusted model): insert(1) ∥ remove(2) on {2,3,4}, then")
	fmt.Println("          insert(4) ∥ insert(3); both unlink the marked node.")
	s := schedule.Figure3()
	if verbose {
		fmt.Print(s)
	}
	correct, reason := schedule.Correct(s)
	ok := verdict("oracle: schedule is correct", true, correct)
	if !correct {
		fmt.Printf("    reason: %s\n", reason)
	}
	ok = verdict("Harris-Michael accepts (paper: it must NOT)", false, schedule.Accepts(schedule.AlgHarris, s)) && ok
	fmt.Println()
	return ok
}

func runEnumeration(sc schedule.Scope) bool {
	fmt.Println("Exhaustive small-scope optimality check (Definition 2 / Theorem 3):")
	ok := true

	// The lower rungs of the concurrency hierarchy first.
	coarse := schedule.CheckOptimality(schedule.AlgCoarse, sc)
	fmt.Printf("  %s\n", coarse)
	hoh := schedule.CheckOptimality(schedule.AlgHOH, sc)
	fmt.Printf("  %s\n", hoh)
	optimistic := schedule.CheckOptimality(schedule.AlgOptimistic, sc)
	fmt.Printf("  %s\n", optimistic)
	if !(coarse.Accepted < hoh.Accepted && hoh.Accepted < optimistic.Accepted) {
		ok = false
		fmt.Println("  UNEXPECTED: hierarchy coarse < hand-over-hand < optimistic violated")
	}

	vbl := schedule.CheckOptimality(schedule.AlgVBL, sc)
	fmt.Printf("  %s\n", vbl)
	if !vbl.Optimal() {
		ok = false
		fmt.Println("  UNEXPECTED: VBL should accept every correct schedule; examples:")
		for _, ex := range vbl.RejectedExamples {
			fmt.Print(ex)
		}
	}

	lazy := schedule.CheckOptimality(schedule.AlgLazy, sc)
	fmt.Printf("  %s\n", lazy)
	if lazy.Optimal() {
		ok = false
		fmt.Println("  UNEXPECTED: Lazy should reject some correct schedules (Figure 2)")
	} else if len(lazy.RejectedExamples) > 0 {
		fmt.Printf("  example correct schedule rejected by Lazy:\n%s", lazy.RejectedExamples[0])
	}

	adj := sc
	adj.Adjusted = true
	harris := schedule.CheckOptimality(schedule.AlgHarris, adj)
	fmt.Printf("  %s\n", harris)
	if harris.Optimal() {
		ok = false
		fmt.Println("  UNEXPECTED: Harris should reject some correct adjusted schedules (Figure 3)")
	} else if len(harris.RejectedExamples) > 0 {
		fmt.Printf("  example correct schedule rejected by Harris-Michael:\n%s", harris.RejectedExamples[0])
	}
	return ok
}
