// Command linearcheck records real concurrent executions of the list
// implementations and verifies them with the Wing-Gong linearizability
// checker — the executable counterpart of the paper's Theorem 1.
//
// Example:
//
//	linearcheck -impl vbl -threads 8 -ops 2000 -keys 8 -trials 10
//	linearcheck -impl all
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"sync"

	"listset"
	"listset/internal/lincheck"
)

func main() {
	var (
		implName = flag.String("impl", "all", "implementation to check, or 'all'")
		threads  = flag.Int("threads", 6, "concurrent goroutines per trial")
		ops      = flag.Int("ops", 1500, "operations per goroutine per trial")
		keys     = flag.Int64("keys", 8, "key range (smaller = more contention)")
		trials   = flag.Int("trials", 5, "trials per implementation")
		seed     = flag.Int64("seed", 7, "base RNG seed")
	)
	flag.Parse()

	var impls []listset.Impl
	if *implName == "all" {
		for _, im := range listset.Implementations() {
			if im.ThreadSafe {
				impls = append(impls, im)
			}
		}
	} else {
		im, err := listset.Lookup(*implName)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		if !im.ThreadSafe {
			fmt.Fprintf(os.Stderr, "linearcheck: %s is not thread safe; nothing to check\n", im.Name)
			os.Exit(2)
		}
		impls = append(impls, im)
	}

	failed := false
	for _, im := range impls {
		fmt.Printf("%-12s ", im.Name)
		bad := 0
		var totalOps int
		for trial := 0; trial < *trials; trial++ {
			h := record(im, *threads, *ops, *keys, *seed+int64(trial)*1000)
			totalOps += len(h.Ops)
			if err := lincheck.Check(h, nil); err != nil {
				bad++
				fmt.Printf("\n  trial %d: %v", trial, err)
				if v, ok := err.(*lincheck.Violation); ok {
					fmt.Printf("\n  minimal violating core:")
					for _, op := range v.Minimize(false) {
						fmt.Printf("\n    %v", op)
					}
				}
			}
		}
		if bad == 0 {
			fmt.Printf("ok: %d trials, %d recorded operations, all linearizable\n", *trials, totalOps)
		} else {
			fmt.Printf("\n  %d/%d trials NOT linearizable\n", bad, *trials)
			failed = true
		}
	}
	if failed {
		os.Exit(1)
	}
}

func record(im listset.Impl, threads, opsPerThread int, keys, seed int64) lincheck.History {
	set := im.New()
	rec := lincheck.NewRecorder()
	sessions := make([]*lincheck.Session, threads)
	for i := range sessions {
		sessions[i] = rec.NewSession(set)
	}
	var wg sync.WaitGroup
	for i, sess := range sessions {
		wg.Add(1)
		go func(seed int64, sess *lincheck.Session) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for j := 0; j < opsPerThread; j++ {
				k := rng.Int63n(keys)
				switch rng.Intn(3) {
				case 0:
					sess.Insert(k)
				case 1:
					sess.Remove(k)
				default:
					sess.Contains(k)
				}
			}
		}(seed+int64(i), sess)
	}
	wg.Wait()
	return rec.History()
}
