package listset

import (
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
)

// Tests for the batch/range/load surfaces (DESIGN.md §13): the oracle
// is always the same — a batch must behave exactly like applying the
// sorted, deduplicated keys one at a time — plus the ordered-read
// invariants (ascending, duplicate-free, linearizable under churn).

// TestCapabilityFlagsMatchSurfaces pins the registry's Batch/Scan/
// BulkLoad flags to reality: a flag is set iff New's sets implement
// the corresponding interface natively. A drifted flag would silently
// route benchmark cells through the wrong code path.
func TestCapabilityFlagsMatchSurfaces(t *testing.T) {
	forEachImpl(t, func(t *testing.T, im Impl) {
		s := im.New()
		if _, ok := s.(Batcher); ok != im.Batch {
			t.Errorf("%s: implements Batcher=%v but registry says Batch=%v", im.Name, ok, im.Batch)
		}
		if _, ok := s.(Ranger); ok != im.Scan {
			t.Errorf("%s: implements Ranger=%v but registry says Scan=%v", im.Name, ok, im.Scan)
		}
		if _, ok := s.(Loader); ok != im.BulkLoad {
			t.Errorf("%s: implements Loader=%v but registry says BulkLoad=%v", im.Name, ok, im.BulkLoad)
		}
	})
}

// TestBatchBasicSemantics checks counts and membership for every
// implementation through the As* adapters (native and fallback alike).
func TestBatchBasicSemantics(t *testing.T) {
	forEachImpl(t, func(t *testing.T, im Impl) {
		s := im.New()
		b := AsBatcher(s)
		// Unsorted with duplicates: {5, 1, 9, 3} effective.
		if got := b.InsertAll([]int64{9, 5, 1, 5, 3, 9}); got != 4 {
			t.Fatalf("InsertAll = %d, want 4", got)
		}
		if got := b.InsertAll([]int64{1, 2, 3}); got != 1 {
			t.Fatalf("second InsertAll = %d, want 1 (only 2 was absent)", got)
		}
		if got := b.ContainsAll([]int64{1, 2, 3, 4, 5}); got != 4 {
			t.Fatalf("ContainsAll = %d, want 4", got)
		}
		if got := b.RemoveAll([]int64{2, 2, 4, 9}); got != 2 {
			t.Fatalf("RemoveAll = %d, want 2", got)
		}
		want := []int64{1, 3, 5}
		got := s.Snapshot()
		if len(got) != len(want) {
			t.Fatalf("Snapshot = %v, want %v", got, want)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("Snapshot = %v, want %v", got, want)
			}
		}
		// Empty and nil batches are no-ops.
		if b.InsertAll(nil) != 0 || b.RemoveAll([]int64{}) != 0 || b.ContainsAll(nil) != 0 {
			t.Fatal("empty batches must return 0")
		}
	})
}

// TestRangeScanSemantics checks [lo, hi) windowing, ascending order
// and Ascend's early stop for every implementation.
func TestRangeScanSemantics(t *testing.T) {
	forEachImpl(t, func(t *testing.T, im Impl) {
		s := im.New()
		for k := int64(0); k < 100; k += 2 {
			s.Insert(k)
		}
		r := AsRanger(s)
		got := r.RangeScan(10, 20)
		want := []int64{10, 12, 14, 16, 18}
		if len(got) != len(want) {
			t.Fatalf("RangeScan(10, 20) = %v, want %v", got, want)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("RangeScan(10, 20) = %v, want %v", got, want)
			}
		}
		if out := r.RangeScan(20, 10); out != nil && len(out) != 0 {
			t.Fatalf("inverted range returned %v", out)
		}
		if out := r.RangeScan(11, 12); len(out) != 0 {
			t.Fatalf("empty window returned %v", out)
		}
		// Ascend from mid-range, stop after 3 keys.
		var seen []int64
		r.Ascend(51, func(v int64) bool {
			seen = append(seen, v)
			return len(seen) < 3
		})
		want = []int64{52, 54, 56}
		if len(seen) != len(want) {
			t.Fatalf("Ascend = %v, want %v", seen, want)
		}
		for i := range want {
			if seen[i] != want[i] {
				t.Fatalf("Ascend = %v, want %v", seen, want)
			}
		}
	})
}

// TestLoadSemantics checks bulk population: O(k) on an empty set, a
// correct merge into a non-empty one, and agreement with Snapshot.
func TestLoadSemantics(t *testing.T) {
	forEachImpl(t, func(t *testing.T, im Impl) {
		s := im.New()
		l := AsLoader(s)
		if got := l.Load([]int64{7, 3, 9, 3, 1}); got != 4 {
			t.Fatalf("Load on empty = %d, want 4", got)
		}
		// Merge: 5 is new, 3 and 9 are present.
		if got := l.Load([]int64{3, 5, 9}); got != 1 {
			t.Fatalf("Load merge = %d, want 1", got)
		}
		want := []int64{1, 3, 5, 7, 9}
		got := s.Snapshot()
		if len(got) != len(want) {
			t.Fatalf("after Load, Snapshot = %v, want %v", got, want)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("after Load, Snapshot = %v, want %v", got, want)
			}
		}
		if s.Len() != 5 {
			t.Fatalf("Len = %d, want 5", s.Len())
		}
	})
}

// FuzzBatchVsOracle interprets the program bytes as a sequence of
// batch operations — batches of raw (unsorted, duplicated) keys — and
// requires every implementation's batch surface to return exactly what
// sequential per-key application of the sorted, deduplicated batch
// returns against a map oracle, with identical final snapshots.
func FuzzBatchVsOracle(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 3, 1, 2})                            // tiny insert batch
	f.Add([]byte{0, 9, 5, 5, 1, 1, 9, 2, 4})             // dups, then remove
	f.Add([]byte{0, 31, 30, 29, 3, 1, 0, 2, 2, 5, 5, 5}) // descending, churn
	seed := make([]byte, 0, 96)
	for i := byte(0); i < 31; i++ {
		seed = append(seed, 0, i) // op boundary noise
	}
	f.Add(seed)
	impls := Implementations()
	f.Fuzz(func(t *testing.T, prog []byte) {
		if len(prog) > 2048 {
			t.Skip("long programs add time, not coverage")
		}
		// Decode: first byte of each chunk picks the op, the next
		// 1+ (b%7) bytes are keys (mod 32 keeps collisions frequent).
		type batchOp struct {
			kind int
			keys []int64
		}
		var ops []batchOp
		for i := 0; i < len(prog); {
			kind := int(prog[i] % 3)
			i++
			n := 1
			if i < len(prog) {
				n += int(prog[i] % 7)
			}
			var keys []int64
			for j := 0; j < n && i < len(prog); j++ {
				keys = append(keys, int64(prog[i]%32))
				i++
			}
			if len(keys) > 0 {
				ops = append(ops, batchOp{kind, keys})
			}
		}
		// Oracle result per op: sequential application of the sorted,
		// deduplicated batch to a map.
		oracle := map[int64]bool{}
		want := make([]int, len(ops))
		for i, op := range ops {
			sorted := append([]int64(nil), op.keys...)
			sort.Slice(sorted, func(a, b int) bool { return sorted[a] < sorted[b] })
			for j, v := range sorted {
				if j > 0 && v == sorted[j-1] {
					continue
				}
				switch op.kind {
				case 0:
					if !oracle[v] {
						oracle[v] = true
						want[i]++
					}
				case 1:
					if oracle[v] {
						delete(oracle, v)
						want[i]++
					}
				case 2:
					if oracle[v] {
						want[i]++
					}
				}
			}
		}
		for _, im := range impls {
			s := im.New()
			b := AsBatcher(s)
			for i, op := range ops {
				var got int
				switch op.kind {
				case 0:
					got = b.InsertAll(op.keys)
				case 1:
					got = b.RemoveAll(op.keys)
				case 2:
					got = b.ContainsAll(op.keys)
				}
				if got != want[i] {
					t.Fatalf("%s: op %d (kind %d, keys %v) = %d, oracle says %d",
						im.Name, i, op.kind, op.keys, got, want[i])
				}
			}
			snap := s.Snapshot()
			if len(snap) != len(oracle) {
				t.Fatalf("%s: final size %d, oracle %d", im.Name, len(snap), len(oracle))
			}
			for i, v := range snap {
				if !oracle[v] {
					t.Fatalf("%s: snapshot has %d, oracle does not", im.Name, v)
				}
				if i > 0 && snap[i-1] >= v {
					t.Fatalf("%s: snapshot not strictly ascending at %d", im.Name, i)
				}
			}
		}
	})
}

// TestRangeScanLinearizable hammers RangeScan under concurrent churn:
// even keys are stable members, odd keys churn. Every scan must (a) be
// strictly ascending and duplicate-free, and (b) contain exactly the
// stable evens of its window — an even missing or duplicated would be
// a scan that saw a state no linearization of the history allows.
func TestRangeScanLinearizable(t *testing.T) {
	forEachConcurrentImpl(t, func(t *testing.T, im Impl) {
		if !im.Scan && testing.Short() {
			t.Skip("fallback Ranger is Snapshot-based; covered by the native impls")
		}
		const keys = 256
		s := im.New()
		for k := int64(0); k < keys; k += 2 {
			s.Insert(k)
		}
		r := AsRanger(s)
		var stop atomic.Bool
		var wg sync.WaitGroup
		for w := 0; w < 4; w++ {
			wg.Add(1)
			go func(seed int64) {
				defer wg.Done()
				rng := rand.New(rand.NewSource(seed))
				for !stop.Load() {
					k := int64(rng.Intn(keys/2))*2 + 1 // odd keys only
					if rng.Intn(2) == 0 {
						s.Insert(k)
					} else {
						s.Remove(k)
					}
				}
			}(int64(w) + 1)
		}
		for i := 0; i < 400; i++ {
			lo := int64(i % 64)
			hi := lo + 128
			got := r.RangeScan(lo, hi)
			evens := map[int64]bool{}
			for j, v := range got {
				if v < lo || v >= hi {
					t.Errorf("%s: scan [%d,%d) returned out-of-window key %d", im.Name, lo, hi, v)
				}
				if j > 0 && got[j-1] >= v {
					t.Errorf("%s: scan not strictly ascending: %d then %d", im.Name, got[j-1], v)
				}
				if v%2 == 0 {
					evens[v] = true
				}
			}
			for k := lo + lo%2; k < hi; k += 2 {
				if !evens[k] {
					t.Errorf("%s: scan [%d,%d) lost stable key %d", im.Name, lo, hi, k)
				}
			}
			if t.Failed() {
				break
			}
		}
		stop.Store(true)
		wg.Wait()
	})
}

// TestBatchConcurrentChurn stress-tests the multi-window pass itself:
// workers fire overlapping insert/remove batches over a small range
// while readers scan; afterwards the set must equal a per-key replay
// is impossible to pin down, so instead we check structural sanity —
// strict ascent, no sentinel leakage — and that every surviving key
// was inserted at some point.
func TestBatchConcurrentChurn(t *testing.T) {
	forEachConcurrentImpl(t, func(t *testing.T, im Impl) {
		if !im.Batch {
			t.Skip("native batch surfaces only; fallback is the per-key ops already under test")
		}
		s := im.New()
		b := AsBatcher(s)
		r := AsRanger(s)
		var stop atomic.Bool
		var wg sync.WaitGroup
		for w := 0; w < 4; w++ {
			wg.Add(1)
			go func(seed int64) {
				defer wg.Done()
				rng := rand.New(rand.NewSource(seed))
				keys := make([]int64, 24)
				for !stop.Load() {
					for i := range keys {
						keys[i] = int64(rng.Intn(192))
					}
					if rng.Intn(2) == 0 {
						b.InsertAll(keys)
					} else {
						b.RemoveAll(keys)
					}
				}
			}(int64(w) * 7)
		}
		for i := 0; i < 300; i++ {
			got := r.RangeScan(0, 192)
			for j := 1; j < len(got); j++ {
				if got[j-1] >= got[j] {
					t.Fatalf("%s: concurrent scan not strictly ascending: %v", im.Name, got[j-1:j+1])
				}
			}
			for _, v := range got {
				if v < 0 || v >= 192 {
					t.Fatalf("%s: concurrent scan leaked key %d", im.Name, v)
				}
			}
		}
		stop.Store(true)
		wg.Wait()
		// Quiescent check: snapshot and per-key Contains agree.
		for _, v := range s.Snapshot() {
			if !s.Contains(v) {
				t.Fatalf("%s: snapshot key %d not Contains-visible at quiescence", im.Name, v)
			}
		}
	})
}

// TestShardSeamBatch drives a batch straddling every boundary of a
// 16-shard partition: each sub-batch must land in its owning shard
// with nothing lost, duplicated or misrouted at the seams.
func TestShardSeamBatch(t *testing.T) {
	const (
		shards   = 16
		keyRange = 1024 // 64 keys per shard
	)
	for _, name := range []string{"vbl", "lazy", "harris"} {
		t.Run(name, func(t *testing.T) {
			im, err := Lookup(name)
			if err != nil {
				t.Fatal(err)
			}
			s := im.NewSharded(shards, 0, keyRange)
			b := AsBatcher(s)
			r := AsRanger(s)
			// One batch with three keys around every seam: last key of
			// shard i, first and second of shard i+1 — plus the domain
			// edges.
			var keys []int64
			span := int64(keyRange / shards)
			for i := int64(1); i < shards; i++ {
				seam := i * span
				keys = append(keys, seam-1, seam, seam+1)
			}
			keys = append(keys, 0, keyRange-1)
			if got, want := b.InsertAll(keys), len(keys); got != want {
				t.Fatalf("seam InsertAll = %d, want %d", got, want)
			}
			if got := b.ContainsAll(keys); got != len(keys) {
				t.Fatalf("seam ContainsAll = %d, want %d", got, len(keys))
			}
			// A scan across the full range sees all seam keys in order.
			got := r.RangeScan(0, keyRange)
			if len(got) != len(keys) {
				t.Fatalf("seam scan returned %d keys, want %d", len(got), len(keys))
			}
			for i := 1; i < len(got); i++ {
				if got[i-1] >= got[i] {
					t.Fatalf("seam scan not ascending at %d: %v", i, got[i-1:i+1])
				}
			}
			// Remove exactly the keys below each seam; the seam keys
			// themselves must survive in the next shard.
			var lower []int64
			for i := int64(1); i < shards; i++ {
				lower = append(lower, i*span-1)
			}
			if got, want := b.RemoveAll(lower), len(lower); got != want {
				t.Fatalf("seam RemoveAll = %d, want %d", got, want)
			}
			for i := int64(1); i < shards; i++ {
				if s.Contains(i*span - 1) {
					t.Fatalf("key %d should be removed", i*span-1)
				}
				if !s.Contains(i * span) {
					t.Fatalf("seam key %d lost by the removal below it", i*span)
				}
			}
		})
	}
}

// TestShardSeamBatchParallel repeats the seam batch through the
// parallel fan-out path.
func TestShardSeamBatchParallel(t *testing.T) {
	s := NewVBLShardedRange(16, 0, 1024)
	type parallelizer interface{ SetBatchParallel(bool) }
	p, ok := s.(parallelizer)
	if !ok {
		t.Fatal("sharded façade lost SetBatchParallel")
	}
	p.SetBatchParallel(true)
	b := AsBatcher(s)
	var keys []int64
	for k := int64(0); k < 1024; k += 3 {
		keys = append(keys, k)
	}
	if got, want := b.InsertAll(keys), len(keys); got != want {
		t.Fatalf("parallel InsertAll = %d, want %d", got, want)
	}
	if got := b.ContainsAll(keys); got != len(keys) {
		t.Fatalf("parallel ContainsAll = %d, want %d", got, len(keys))
	}
	if got, want := b.RemoveAll(keys), len(keys); got != want {
		t.Fatalf("parallel RemoveAll = %d, want %d", got, want)
	}
	if s.Len() != 0 {
		t.Fatalf("Len = %d after removing everything", s.Len())
	}
}

// TestFallbackAdapterOnUnportedImpl pins the adapter path: an
// implementation without native surfaces still serves the full batch
// contract through AsBatcher/AsRanger/AsLoader.
func TestFallbackAdapterOnUnportedImpl(t *testing.T) {
	im, err := Lookup("hoh")
	if err != nil {
		t.Fatal(err)
	}
	if im.Batch || im.Scan || im.BulkLoad {
		t.Fatal("hoh grew native surfaces; retarget this test at a fallback impl")
	}
	s := im.New()
	if got := AsBatcher(s).InsertAll([]int64{3, 1, 2, 1}); got != 3 {
		t.Fatalf("fallback InsertAll = %d, want 3", got)
	}
	if got := AsRanger(s).RangeScan(2, 10); len(got) != 2 || got[0] != 2 || got[1] != 3 {
		t.Fatalf("fallback RangeScan = %v, want [2 3]", got)
	}
	if got := AsLoader(s).Load([]int64{4, 5}); got != 2 {
		t.Fatalf("fallback Load = %d, want 2", got)
	}
}
