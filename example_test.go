package listset_test

import (
	"fmt"
	"sync"

	"listset"
)

func ExampleNewVBL() {
	s := listset.NewVBL()
	fmt.Println(s.Insert(3))   // true: 3 was absent
	fmt.Println(s.Insert(3))   // false: already present
	fmt.Println(s.Contains(3)) // true
	fmt.Println(s.Remove(3))   // true: 3 was present
	fmt.Println(s.Remove(3))   // false: already gone
	// Output:
	// true
	// false
	// true
	// true
	// false
}

func ExampleSet_Snapshot() {
	s := listset.NewVBL()
	for _, v := range []int64{5, -2, 9, 0} {
		s.Insert(v)
	}
	fmt.Println(s.Snapshot())
	fmt.Println(s.Len())
	// Output:
	// [-2 0 5 9]
	// 4
}

func ExampleNewVBL_concurrent() {
	s := listset.NewVBL()
	var wg sync.WaitGroup
	// Four goroutines insert disjoint stripes concurrently.
	for g := int64(0); g < 4; g++ {
		wg.Add(1)
		go func(base int64) {
			defer wg.Done()
			for k := base; k < base+25; k++ {
				s.Insert(k)
			}
		}(g * 25)
	}
	wg.Wait()
	fmt.Println(s.Len())
	// Output:
	// 100
}

func ExampleLookup() {
	im, err := listset.Lookup("harris")
	if err != nil {
		panic(err)
	}
	fmt.Println(im.Name, im.LockFree)
	s := im.New()
	fmt.Println(s.Insert(1))
	// Output:
	// harris true
	// true
}

func ExampleImplementations() {
	for _, im := range listset.Implementations() {
		if im.ThreadSafe && im.LockFree {
			fmt.Println(im.Name)
		}
	}
	// Output:
	// harris
	// harris-amr
	// fomitchev
	// harris-sharded
}

func ExampleNewVBLShardedRange() {
	// Four VBL lists behind the order-preserving range partitioner:
	// keys in [0, 40) split into spans of 16 (the shard count and span
	// are rounded to powers of two), and out-of-range keys clamp to
	// the edge shards. The Set contract is unchanged — Snapshot is
	// still one ascending sequence.
	s := listset.NewVBLShardedRange(4, 0, 40)
	for _, v := range []int64{33, 2, 17, -8, 99} {
		s.Insert(v)
	}
	fmt.Println(s.Snapshot())
	fmt.Println(s.Len())
	// Output:
	// [-8 2 17 33 99]
	// 5
}
