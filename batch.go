package listset

import (
	"listset/internal/batch"
)

// Batched and ranged operations. The three protagonists (VBL, Lazy,
// Harris marker) and the sharded façade implement these natively with
// an amortized one-pass multi-window traversal (see DESIGN.md §13);
// every other implementation keeps working through the fallback
// adapters below, which apply the same sorted, deduplicated batch one
// key at a time. Either way the semantics are identical: batch
// operations act on the SET of keys (duplicates collapse), each key's
// operation linearizes individually within the call in ascending key
// order, and the returned count is the number of effective per-key
// operations. There is no whole-batch atomicity — that would require
// locking every window at once, the coarse serialization the paper's
// concurrency-optimality argument exists to avoid.

// Batcher is the batch surface of a set: apply many keys in one call.
// Counts are per effective key: InsertAll returns how many keys were
// absent (and are now present), RemoveAll how many were present,
// ContainsAll how many are members.
type Batcher interface {
	InsertAll(keys []int64) int
	RemoveAll(keys []int64) int
	ContainsAll(keys []int64) int
}

// Ranger is the ordered-read surface of a set. RangeScan returns the
// keys in the half-open range [lo, hi), ascending, duplicate-free;
// each key's presence or absence linearizes individually during the
// scan. Ascend iterates keys >= from in ascending order until yield
// returns false.
type Ranger interface {
	RangeScan(lo, hi int64) []int64
	Ascend(from int64, yield func(int64) bool)
}

// Loader is the bulk-population surface of a set: Load inserts the
// keys in O(n + k) with a single merge walk — O(k) on an empty set —
// and returns how many were absent. Load is for setup at quiescence:
// native implementations take no locks and must not race with other
// operations.
type Loader interface {
	Load(keys []int64) int
}

// AsBatcher returns s's native batch surface when it has one, or a
// fallback adapter that sorts and deduplicates the batch and applies
// it one key at a time.
func AsBatcher(s Set) Batcher {
	if b, ok := s.(Batcher); ok {
		return b
	}
	return fallback{s}
}

// AsRanger returns s's native range surface when it has one, or a
// fallback adapter built on Snapshot.
func AsRanger(s Set) Ranger {
	if r, ok := s.(Ranger); ok {
		return r
	}
	return fallback{s}
}

// AsLoader returns s's native bulk-load surface when it has one, or a
// fallback adapter that inserts one key at a time.
func AsLoader(s Set) Loader {
	if l, ok := s.(Loader); ok {
		return l
	}
	return fallback{s}
}

// fallback adapts any Set to the batch/range/load surfaces with
// per-key loops over the canonical (sorted, deduplicated) batch. It
// preserves the batch semantics exactly — ascending per-key
// application — just without the one-pass amortization.
type fallback struct{ s Set }

func (f fallback) InsertAll(keys []int64) int {
	b := batch.Prep(keys)
	n := 0
	for _, v := range b.K {
		if f.s.Insert(v) {
			n++
		}
	}
	b.Put()
	return n
}

func (f fallback) RemoveAll(keys []int64) int {
	b := batch.Prep(keys)
	n := 0
	for _, v := range b.K {
		if f.s.Remove(v) {
			n++
		}
	}
	b.Put()
	return n
}

func (f fallback) ContainsAll(keys []int64) int {
	b := batch.Prep(keys)
	n := 0
	for _, v := range b.K {
		if f.s.Contains(v) {
			n++
		}
	}
	b.Put()
	return n
}

func (f fallback) RangeScan(lo, hi int64) []int64 {
	if hi <= lo {
		return nil
	}
	var out []int64
	for _, v := range f.s.Snapshot() {
		if v >= lo && v < hi {
			out = append(out, v)
		}
	}
	return out
}

func (f fallback) Ascend(from int64, yield func(int64) bool) {
	for _, v := range f.s.Snapshot() {
		if v >= from && !yield(v) {
			return
		}
	}
}

func (f fallback) Load(keys []int64) int {
	return f.InsertAll(keys)
}
