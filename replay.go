package listset

import (
	"fmt"
	"time"

	"listset/internal/core"
	"listset/internal/failpoint"
	"listset/internal/obs"
	"listset/internal/obs/trace"
)

// Deterministic figure replays with the flight recorder attached: the
// same one-shot failpoint recipes the figure tests pin (see
// figure_schedules_test.go), but driven as library functions that
// bracket every operation with trace spans. A capture of a replay
// lifts — via trace.Capture.ScheduleOps and schedule.Lift — back into
// the paper's accepted schedule, machine-checked end to end; that
// round trip is what scripts/trace_smoke.sh and the round-trip tests
// exercise.

// replayPauseTimeout bounds every wait on a parked goroutine.
const replayPauseTimeout = 5 * time.Second

// tracedOp brackets one operation with op-begin/op-end span records.
func tracedOp(tr *trace.Tracer, worker int, kind obs.OpKind, key int64, op func(int64) bool) bool {
	tr.OpBegin(worker, kind, key)
	ok := op(key)
	tr.OpEnd(worker, kind, key, ok)
	return ok
}

// ReplayFigure2 drives the paper's Figure 2 schedule against VBL with
// the tracer capturing it: worker 0's Insert(2) parks pre-lock at
// vbl-lock-next-at, worker 1's Insert(1) fails to completion inline,
// worker 0 resumes and links. It returns the initial set contents
// (the lincheck/Lift baseline) or an error when the replay does not
// reproduce the schedule. tr needs at least 2 worker rings.
func ReplayFigure2(tr *trace.Tracer) ([]int64, error) {
	s := core.New()
	fps := failpoint.NewSet()
	probes := obs.NewProbes()
	s.SetFailpoints(fps)
	s.SetProbes(probes)
	if !s.Insert(1) {
		return nil, fmt.Errorf("replay: seeding Insert(1) failed")
	}
	// Sinks attach after seeding (population is not part of the
	// schedule) and detach after the parked goroutine drains.
	probes.SetSink(tr)
	fps.SetSink(tr)
	defer probes.SetSink(nil)
	defer fps.SetSink(nil)

	pause, err := fps.PauseAt(failpoint.SiteVBLLockNextAt, 2)
	if err != nil {
		return nil, err
	}
	done := make(chan bool, 1)
	go func() { done <- tracedOp(tr, 0, obs.OpInsert, 2, s.Insert) }()
	if err := pause.AwaitReached(replayPauseTimeout); err != nil {
		return nil, err
	}
	if tracedOp(tr, 1, obs.OpInsert, 1, s.Insert) {
		return nil, fmt.Errorf("replay: Insert(1) = true with 1 present")
	}
	pause.Resume()
	select {
	case ok := <-done:
		if !ok {
			return nil, fmt.Errorf("replay: Insert(2) = false on a set without 2")
		}
	case <-time.After(replayPauseTimeout):
		return nil, fmt.Errorf("replay: Insert(2) did not complete after Resume")
	}
	ev := probes.Snapshot()
	if n := ev[obs.EvRestartPrev] + ev[obs.EvRestartHead]; n != 0 {
		return nil, fmt.Errorf("replay: VBL restarted %d times on the Figure 2 schedule; want 0", n)
	}
	return []int64{1}, nil
}

// ReplayFigure3 drives the paper's Figure 3 schedule (both phases of
// the figure test) under the tracer: worker 0's Remove(2) parks at the
// value-aware lock, worker 1's Insert(1) invalidates its window, the
// remove recovers with exactly one prev-restart; then worker 0's
// Insert(4) parks at the traverse anchor while worker 1's Insert(3)
// fails to completion wait-free. Returns the initial set contents.
func ReplayFigure3(tr *trace.Tracer) ([]int64, error) {
	s := core.New()
	fps := failpoint.NewSet()
	probes := obs.NewProbes()
	s.SetFailpoints(fps)
	s.SetProbes(probes)
	initial := []int64{2, 3, 4}
	for _, v := range initial {
		if !s.Insert(v) {
			return nil, fmt.Errorf("replay: seeding Insert(%d) failed", v)
		}
	}
	probes.SetSink(tr)
	fps.SetSink(tr)
	defer probes.SetSink(nil)
	defer fps.SetSink(nil)

	// Phase 1: the window-invalidation interleaving.
	base := probes.Snapshot()
	pause, err := fps.PauseAt(failpoint.SiteVBLLockNextAtValue, 2)
	if err != nil {
		return nil, err
	}
	done := make(chan bool, 1)
	go func() { done <- tracedOp(tr, 0, obs.OpRemove, 2, s.Remove) }()
	if err := pause.AwaitReached(replayPauseTimeout); err != nil {
		return nil, err
	}
	if !tracedOp(tr, 1, obs.OpInsert, 1, s.Insert) {
		return nil, fmt.Errorf("replay: Insert(1) = false with 1 absent")
	}
	pause.Resume()
	select {
	case ok := <-done:
		if !ok {
			return nil, fmt.Errorf("replay: Remove(2) = false with 2 present")
		}
	case <-time.After(replayPauseTimeout):
		return nil, fmt.Errorf("replay: Remove(2) did not complete after Resume")
	}
	ev := probes.Snapshot().Sub(base)
	if got := ev[obs.EvRestartPrev]; got != 1 {
		return nil, fmt.Errorf("replay: prev-restarts = %d, want exactly 1", got)
	}
	if got := ev[obs.EvRestartHead]; got != 0 {
		return nil, fmt.Errorf("replay: head-restarts = %d, want 0", got)
	}

	// Phase 2: failed updates complete wait-free past a parked insert.
	pause, err = fps.PauseAt(failpoint.SiteVBLTraverse, 4)
	if err != nil {
		return nil, err
	}
	go func() { done <- tracedOp(tr, 0, obs.OpInsert, 4, s.Insert) }()
	if err := pause.AwaitReached(replayPauseTimeout); err != nil {
		return nil, err
	}
	if tracedOp(tr, 1, obs.OpInsert, 3, s.Insert) {
		return nil, fmt.Errorf("replay: Insert(3) = true with 3 present")
	}
	pause.Resume()
	select {
	case ok := <-done:
		if ok {
			return nil, fmt.Errorf("replay: Insert(4) = true with 4 present")
		}
	case <-time.After(replayPauseTimeout):
		return nil, fmt.Errorf("replay: Insert(4) did not complete after Resume")
	}
	return initial, nil
}
