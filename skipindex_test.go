package listset

import (
	"math/rand"
	"sort"
	"sync"
	"testing"

	"listset/internal/failpoint"
	"listset/internal/lincheck"
	"listset/internal/obs"
)

// Tests for the skip lists' full-citizenship surfaces (DESIGN.md §15):
// the sharded façade under seam-targeted faults with a live migration,
// and a fuzz target that drives the batch + scan paths of every skip
// variant against the map oracle.

// TestChaosSkipShardSeamFaults is the skip-list twin of
// TestChaosShardSeamFaults, with one extra hazard the flat lists never
// face: a concurrent Rebalance moves the partition's watermark across
// keys whose towers span multiple index levels, so a migrated tower
// must come up with a consistent index on the destination shard while
// forced failures hammer the level-0 locks and index links at the old
// boundaries. Any tower whose index survived the move pointing at the
// wrong shard's nodes would surface as a non-linearizable history or a
// broken cross-shard snapshot order.
func TestChaosSkipShardSeamFaults(t *testing.T) {
	const shards = 16
	s := NewVBSkipShardedRange(shards, 0, 64)
	reb, ok := s.(interface {
		EnableRebalance()
		Rebalance(bounds []int64) (moved int, err error)
		Boundaries() []int64
	})
	if !ok {
		t.Fatal("sharded skip façade does not expose the rebalance surface")
	}
	reb.EnableRebalance()
	boundaries := reb.Boundaries()
	if len(boundaries) != shards {
		t.Fatalf("Boundaries() returned %d bounds, want %d", len(boundaries), shards)
	}

	fps := failpoint.NewSet()
	if !failpoint.Attach(s, fps) {
		t.Fatal("sharded skip façade is not Injectable")
	}
	obs.AttachRetryBudget(s, 4)
	if err := fps.ArmAll([]failpoint.Scenario{
		{Site: failpoint.SiteSkipLockNextAt, Action: failpoint.ActFail, Probability: 0.5, Keys: boundaries, Seed: 7},
		{Site: failpoint.SiteSkipIndexLink, Action: failpoint.ActFail, Probability: 0.5, Keys: boundaries, Seed: 8},
		{Site: failpoint.SiteSkipTraverse, Action: failpoint.ActYield, Probability: 0.2, Seed: 9},
		{Site: failpoint.SiteShardRoute, Action: failpoint.ActYield, Probability: 0.2, Seed: 10},
	}); err != nil {
		t.Fatal(err)
	}
	defer fps.DisarmAll()

	// Candidate keys hug every boundary from both sides, so each
	// migration strands towers on both flanks of the moving watermark.
	var candidates []int64
	for _, bd := range boundaries {
		candidates = append(candidates, bd-1, bd, bd+1)
	}
	initial := map[int64]bool{}
	for i, k := range candidates {
		if i%2 == 0 && k >= 0 {
			s.Insert(k)
			initial[k] = true
		}
	}

	// Two skewed partitions the migrator flips between: all-low squeezes
	// fifteen seams into [0, 16), all-high squeezes them into [48, 64).
	low := make([]int64, shards)
	high := make([]int64, shards)
	for i := range low {
		low[i] = int64(i)
		if i == 0 {
			high[i] = 0
		} else {
			high[i] = int64(47 + i)
		}
	}

	ops := 500
	if testing.Short() {
		ops = 150
	}
	rec := lincheck.NewRecorder()
	const goroutines = 4
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		sess := rec.NewSession(s)
		wg.Add(1)
		go func(seed int64, sess *lincheck.Session) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for j := 0; j < ops; j++ {
				k := candidates[rng.Intn(len(candidates))]
				switch rng.Intn(4) {
				case 0:
					sess.Insert(k)
				case 1:
					sess.Remove(k)
				default:
					sess.Contains(k)
				}
			}
		}(int64(i)+7000, sess)
	}
	// The migrator runs beside the churn: membership-preserving, so the
	// recorded history must stay linearizable straight through it.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for r := 0; r < 3; r++ {
			if _, err := reb.Rebalance(low); err != nil {
				t.Errorf("Rebalance(low): %v", err)
				return
			}
			if _, err := reb.Rebalance(high); err != nil {
				t.Errorf("Rebalance(high): %v", err)
				return
			}
		}
	}()
	wg.Wait()
	if err := lincheck.Check(rec.History(), initial); err != nil {
		t.Fatal(err)
	}
	snap := s.Snapshot()
	for i := 1; i < len(snap); i++ {
		if snap[i-1] >= snap[i] {
			t.Fatalf("Snapshot not strictly ascending across migrated seams: %v", snap)
		}
	}
}

// skipImpls returns the registry rows the skip-index work added: both
// skip lists, the arena-backed variant and the sharded forms.
func skipImpls(t testing.TB) []Impl {
	t.Helper()
	names := []string{"vbskip", "vbskip-arena", "vbskip-sharded", "lazyskip", "lazyskip-sharded"}
	var out []Impl
	for _, name := range names {
		im, err := Lookup(name)
		if err != nil {
			t.Fatalf("registry lost %q: %v", name, err)
		}
		out = append(out, im)
	}
	return out
}

// FuzzSkipVsOracle drives the skip lists' native batch and scan
// surfaces — the single-descending-pass, finger-seeded paths that
// point-op fuzzing never reaches — against the map oracle. Chunk
// encoding: one op byte, then either a two-byte [lo, hi) window
// (RangeScan) or a length byte followed by raw (unsorted, duplicated)
// keys (InsertAll/RemoveAll/ContainsAll).
func FuzzSkipVsOracle(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 3, 9, 5, 1})                            // one insert batch
	f.Add([]byte{0, 6, 31, 30, 29, 3, 1, 0, 1, 2, 30, 29})  // descending, then remove
	f.Add([]byte{0, 4, 8, 8, 8, 9, 3, 0, 31, 1, 1, 8, 3, 7, 11}) // dups, full scan, churn
	seed := make([]byte, 0, 96)
	for i := byte(0); i < 31; i++ {
		seed = append(seed, 0, 1, i, 3, i, 31) // insert one key, scan the tail
	}
	f.Add(seed)
	impls := skipImpls(f)
	f.Fuzz(func(t *testing.T, prog []byte) {
		if len(prog) > 2048 {
			t.Skip("long programs add time, not coverage")
		}
		type skipOp struct {
			kind   int
			keys   []int64
			lo, hi int64
		}
		var ops []skipOp
		for i := 0; i < len(prog); {
			kind := int(prog[i] % 4)
			i++
			if kind == 3 {
				if i+1 >= len(prog) {
					break
				}
				lo, hi := int64(prog[i]%32), int64(prog[i+1]%32)
				i += 2
				if lo > hi {
					lo, hi = hi, lo
				}
				ops = append(ops, skipOp{kind: 3, lo: lo, hi: hi + 1})
				continue
			}
			n := 1
			if i < len(prog) {
				n += int(prog[i] % 7)
				i++
			}
			var keys []int64
			for j := 0; j < n && i < len(prog); j++ {
				keys = append(keys, int64(prog[i]%32))
				i++
			}
			if len(keys) > 0 {
				ops = append(ops, skipOp{kind: kind, keys: keys})
			}
		}
		// Oracle: sequential application of the sorted, deduplicated
		// batch; scans read the half-open window out of the map.
		oracle := map[int64]bool{}
		wantN := make([]int, len(ops))
		wantScan := make([][]int64, len(ops))
		for i, op := range ops {
			if op.kind == 3 {
				var w []int64
				for k := op.lo; k < op.hi; k++ {
					if oracle[k] {
						w = append(w, k)
					}
				}
				wantScan[i] = w
				continue
			}
			sorted := append([]int64(nil), op.keys...)
			sort.Slice(sorted, func(a, b int) bool { return sorted[a] < sorted[b] })
			for j, v := range sorted {
				if j > 0 && v == sorted[j-1] {
					continue
				}
				switch op.kind {
				case 0:
					if !oracle[v] {
						oracle[v] = true
						wantN[i]++
					}
				case 1:
					if oracle[v] {
						delete(oracle, v)
						wantN[i]++
					}
				case 2:
					if oracle[v] {
						wantN[i]++
					}
				}
			}
		}
		for _, im := range impls {
			s := im.New()
			b, okB := s.(Batcher)
			r, okR := s.(Ranger)
			if !okB || !okR {
				t.Fatalf("%s: skip variant lost its native batch/scan surface", im.Name)
			}
			for i, op := range ops {
				if op.kind == 3 {
					got := r.RangeScan(op.lo, op.hi)
					if len(got) != len(wantScan[i]) {
						t.Fatalf("%s: op %d RangeScan(%d, %d) = %v, oracle says %v",
							im.Name, i, op.lo, op.hi, got, wantScan[i])
					}
					for j := range got {
						if got[j] != wantScan[i][j] {
							t.Fatalf("%s: op %d RangeScan(%d, %d) = %v, oracle says %v",
								im.Name, i, op.lo, op.hi, got, wantScan[i])
						}
					}
					continue
				}
				var got int
				switch op.kind {
				case 0:
					got = b.InsertAll(op.keys)
				case 1:
					got = b.RemoveAll(op.keys)
				case 2:
					got = b.ContainsAll(op.keys)
				}
				if got != wantN[i] {
					t.Fatalf("%s: op %d (kind %d, keys %v) = %d, oracle says %d",
						im.Name, i, op.kind, op.keys, got, wantN[i])
				}
			}
			if s.Len() != len(oracle) {
				t.Fatalf("%s: final Len = %d, want %d", im.Name, s.Len(), len(oracle))
			}
			snap := s.Snapshot()
			for i, v := range snap {
				if !oracle[v] {
					t.Fatalf("%s: Snapshot holds %d which the oracle lacks", im.Name, v)
				}
				if i > 0 && snap[i-1] >= v {
					t.Fatalf("%s: Snapshot not strictly ascending: %v", im.Name, snap)
				}
			}
		}
	})
}
